//! Versioned, deterministic on-disk model artifacts.
//!
//! The paper treats a compiled SC network as a fixed hardware artifact: the
//! quantised comparator levels and the hardwired weight-SNG randomness *are*
//! the chip. This module persists exactly that unit — the
//! [`CompiledNetwork`] — so a serving process can host many models without
//! re-quantising from floats on every start, and so two processes can agree
//! on *which* model they are running by comparing fingerprints.
//!
//! # Format (version 1)
//!
//! All integers are little-endian. The file is:
//!
//! ```text
//! offset  size  field
//! 0       8     magic "AQFPSCM1"
//! 8       4     format version (u32, currently 1)
//! 12      16    model fingerprint (u128, FNV-1a-128, see below)
//! 28      2     name length (u16)
//! 30      n     spec name (UTF-8; advisory — not part of the fingerprint)
//! 30+n    ..    body (fingerprinted content, layout below)
//! ```
//!
//! The body is the canonical content serialization:
//!
//! ```text
//! bits u32 · stream_seed u64 · input_side u64 · layer count u32 · layers
//! Conv:    tag 0 · k u32 · in_c u32 · out_c u32 · padding u8 ·
//!          w levels (out_c·in_c·k² × u64) · b levels (out_c × u64)
//! AvgPool: tag 1 · k u32
//! Dense:   tag 2 · in_f u32 · out_f u32 · w (out_f·in_f) · b (out_f)
//! Output:  tag 3 · in_f u32 · classes u32 · w (classes·in_f) · b (classes)
//! ```
//!
//! The [`ModelFingerprint`] is FNV-1a-128 over the domain string
//! `"aqfp-sc-model-v1"` followed by the body bytes — i.e. over everything
//! that determines the compiled bits (quantised weights/biases, topology,
//! padding, comparator resolution `bits`, and the weight-stream seed), and
//! nothing that doesn't (the human-readable name). Serialization is a pure
//! function of the network, so `save → load → save` is byte-identical.
//!
//! # Failure modes
//!
//! Every malformed input is a typed [`ArtifactError`], never a panic:
//! truncation at any offset, wrong magic, a future format version, invalid
//! UTF-8 or layer tags, dimension/level values outside the valid range,
//! trailing bytes, and payloads whose recomputed fingerprint does not match
//! the stored one (bit rot that still parses).

use std::error::Error;
use std::fmt;
use std::path::Path;
use std::sync::Mutex;

use aqfp_sc_nn::Padding;

use crate::arch::{LayerSpec, NetworkSpec};
use crate::compile::{CompiledLayer, CompiledNetwork};

/// First 8 bytes of every artifact.
pub const ARTIFACT_MAGIC: [u8; 8] = *b"AQFPSCM1";

/// The artifact format version this build writes and the newest it reads.
/// Policy: the version bumps on any layout change; readers reject newer
/// versions (forward compatibility is not attempted) and keep decoding every
/// older one.
pub const ARTIFACT_VERSION: u32 = 1;

/// Domain-separation prefix of the fingerprint hash.
const FINGERPRINT_DOMAIN: &[u8] = b"aqfp-sc-model-v1";

/// Content identity of a compiled network: a 128-bit FNV-1a hash over the
/// canonical body serialization — quantised weight/bias levels, layer
/// topology and padding, input geometry, comparator resolution, and the
/// weight-stream seed.
///
/// Two networks with equal fingerprints produce byte-identical weight
/// streams and therefore bit-identical inference; two networks differing in
/// *any* of those inputs (notably `with_stream_seed` twins and
/// quantisation-`bits` twins, which the pre-artifact plan guard could not
/// tell apart) get distinct fingerprints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelFingerprint(pub u128);

impl fmt::Display for ModelFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Errors of artifact encoding, decoding, and file I/O. Every failure mode
/// of [`CompiledNetwork::load`] is one of these variants — a malformed or
/// hostile file can never panic the loader.
#[derive(Debug)]
#[non_exhaustive]
pub enum ArtifactError {
    /// Reading or writing the underlying file failed.
    Io(std::io::Error),
    /// The file does not start with [`ARTIFACT_MAGIC`].
    BadMagic {
        /// The first bytes actually found (zero-padded when shorter).
        found: [u8; 8],
    },
    /// The file's format version is newer than this build understands.
    UnsupportedVersion {
        /// Version stored in the file.
        found: u32,
        /// Newest version this build reads.
        supported: u32,
    },
    /// The file ended before a field could be read.
    Truncated {
        /// Field being read when the bytes ran out.
        context: &'static str,
        /// Bytes the field needed.
        needed: usize,
        /// Bytes remaining in the file.
        remaining: usize,
    },
    /// A field parsed but its value is invalid (bad tag, impossible
    /// dimension, out-of-range level, trailing bytes, …).
    Corrupt {
        /// What was wrong.
        reason: String,
    },
    /// The payload parsed but its recomputed fingerprint differs from the
    /// stored one: the content was altered after signing.
    FingerprintMismatch {
        /// Fingerprint stored in the header.
        stored: ModelFingerprint,
        /// Fingerprint recomputed from the decoded body.
        computed: ModelFingerprint,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact I/O failed: {e}"),
            ArtifactError::BadMagic { found } => {
                write!(f, "not a model artifact (magic {found:02x?})")
            }
            ArtifactError::UnsupportedVersion { found, supported } => write!(
                f,
                "artifact format version {found} is newer than the supported {supported}"
            ),
            ArtifactError::Truncated { context, needed, remaining } => write!(
                f,
                "artifact truncated reading {context}: needed {needed} bytes, {remaining} left"
            ),
            ArtifactError::Corrupt { reason } => write!(f, "artifact corrupt: {reason}"),
            ArtifactError::FingerprintMismatch { stored, computed } => write!(
                f,
                "artifact fingerprint mismatch: header says {stored}, content hashes to {computed}"
            ),
        }
    }
}

impl Error for ArtifactError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

impl CompiledNetwork {
    /// The content fingerprint of this network (see [`ModelFingerprint`]).
    ///
    /// [`ExecPlan`](crate::ExecPlan) caches this at construction and stamps
    /// it onto bound states, so a state begun under one network can never be
    /// advanced by a seed- or quantisation-twin.
    pub fn fingerprint(&self) -> ModelFingerprint {
        let mut hash = Fnv128::new();
        hash.update(FINGERPRINT_DOMAIN);
        hash.update(&body_bytes(self));
        ModelFingerprint(hash.finish())
    }

    /// Serializes this network to the versioned artifact byte format.
    pub fn to_artifact_bytes(&self) -> Vec<u8> {
        let body = body_bytes(self);
        let mut hash = Fnv128::new();
        hash.update(FINGERPRINT_DOMAIN);
        hash.update(&body);
        let name = self.spec().name.as_bytes();
        debug_assert!(name.len() <= u16::MAX as usize, "spec names are short");
        let mut out = Vec::with_capacity(30 + name.len() + body.len());
        out.extend_from_slice(&ARTIFACT_MAGIC);
        out.extend_from_slice(&ARTIFACT_VERSION.to_le_bytes());
        out.extend_from_slice(&hash.finish().to_le_bytes());
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&body);
        out
    }

    /// Decodes an artifact produced by [`CompiledNetwork::to_artifact_bytes`].
    pub fn from_artifact_bytes(bytes: &[u8]) -> Result<Self, ArtifactError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        let magic = r.take(8, "magic")?;
        if magic != ARTIFACT_MAGIC {
            let mut found = [0u8; 8];
            found[..magic.len()].copy_from_slice(magic);
            return Err(ArtifactError::BadMagic { found });
        }
        let version = r.u32("format version")?;
        if version > ARTIFACT_VERSION {
            return Err(ArtifactError::UnsupportedVersion {
                found: version,
                supported: ARTIFACT_VERSION,
            });
        }
        let stored = ModelFingerprint(r.u128("fingerprint")?);
        let name_len = r.u16("name length")? as usize;
        let name = std::str::from_utf8(r.take(name_len, "name")?)
            .map_err(|_| corrupt("spec name is not UTF-8"))?;
        let name = intern_name(name);
        let body_start = r.pos;
        let net = decode_body(&mut r, name)?;
        if r.pos != r.buf.len() {
            return Err(corrupt(format!(
                "{} trailing bytes after the last layer",
                r.buf.len() - r.pos
            )));
        }
        let mut hash = Fnv128::new();
        hash.update(FINGERPRINT_DOMAIN);
        hash.update(&bytes[body_start..]);
        let computed = ModelFingerprint(hash.finish());
        if computed != stored {
            return Err(ArtifactError::FingerprintMismatch { stored, computed });
        }
        Ok(net)
    }

    /// Saves this network as a versioned artifact at `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        std::fs::write(path, self.to_artifact_bytes())?;
        Ok(())
    }

    /// Loads a network from an artifact file. The inverse of
    /// [`CompiledNetwork::save`]: the loaded network is content-identical to
    /// the saved one (equal [fingerprint](CompiledNetwork::fingerprint)),
    /// so every plan built from it produces bit-identical inference.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ArtifactError> {
        Self::from_artifact_bytes(&std::fs::read(path)?)
    }
}

/// Canonical body serialization shared by the fingerprint and the artifact
/// writer (everything after the name field).
fn body_bytes(net: &CompiledNetwork) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&net.bits().to_le_bytes());
    out.extend_from_slice(&net.stream_seed().to_le_bytes());
    out.extend_from_slice(&(net.spec().input_side as u64).to_le_bytes());
    out.extend_from_slice(&(net.layers().len() as u32).to_le_bytes());
    let push_levels = |out: &mut Vec<u8>, levels: &[u64]| {
        for &l in levels {
            out.extend_from_slice(&l.to_le_bytes());
        }
    };
    for layer in net.layers() {
        match layer {
            CompiledLayer::Conv { k, in_c, out_c, padding, w_levels, b_levels } => {
                out.push(0);
                out.extend_from_slice(&(*k as u32).to_le_bytes());
                out.extend_from_slice(&(*in_c as u32).to_le_bytes());
                out.extend_from_slice(&(*out_c as u32).to_le_bytes());
                out.push(match padding {
                    Padding::Valid => 0,
                    Padding::Same => 1,
                });
                push_levels(&mut out, w_levels);
                push_levels(&mut out, b_levels);
            }
            CompiledLayer::Pool { k } => {
                out.push(1);
                out.extend_from_slice(&(*k as u32).to_le_bytes());
            }
            CompiledLayer::Dense { in_f, out_f, w_levels, b_levels } => {
                out.push(2);
                out.extend_from_slice(&(*in_f as u32).to_le_bytes());
                out.extend_from_slice(&(*out_f as u32).to_le_bytes());
                push_levels(&mut out, w_levels);
                push_levels(&mut out, b_levels);
            }
            CompiledLayer::Output { in_f, classes, w_levels, b_levels } => {
                out.push(3);
                out.extend_from_slice(&(*in_f as u32).to_le_bytes());
                out.extend_from_slice(&(*classes as u32).to_le_bytes());
                push_levels(&mut out, w_levels);
                push_levels(&mut out, b_levels);
            }
        }
    }
    out
}

/// Decodes the body into a network, validating every dimension against the
/// incrementally tracked feature-map shape and every level against the
/// comparator grid.
fn decode_body(r: &mut Reader<'_>, name: &'static str) -> Result<CompiledNetwork, ArtifactError> {
    let bits = r.u32("bits")?;
    if bits == 0 || bits > 63 {
        return Err(corrupt(format!("comparator resolution {bits} bits outside 1..=63")));
    }
    let stream_seed = r.u64("stream seed")?;
    let input_side = r.u64("input side")? as usize;
    if input_side == 0 || input_side > 1 << 14 {
        return Err(corrupt(format!("input side {input_side} outside 1..=16384")));
    }
    let layer_count = r.u32("layer count")? as usize;
    if layer_count == 0 || layer_count > 1 << 10 {
        return Err(corrupt(format!("layer count {layer_count} outside 1..=1024")));
    }
    let max_level = 1u64 << bits;
    let mut layers = Vec::with_capacity(layer_count);
    let mut spec_layers = Vec::with_capacity(layer_count);
    // Feature-map shape after the layers decoded so far.
    let (mut c, mut h, mut w_dim) = (1usize, input_side, input_side);
    let dim = |v: u32, what: &str| -> Result<usize, ArtifactError> {
        if v == 0 || v > 1 << 14 {
            Err(corrupt(format!("{what} {v} outside 1..=16384")))
        } else {
            Ok(v as usize)
        }
    };
    for li in 0..layer_count {
        let tag = r.u8("layer tag")?;
        match tag {
            0 => {
                let k = dim(r.u32("conv kernel")?, "conv kernel")?;
                let in_c = dim(r.u32("conv in_c")?, "conv in_c")?;
                let out_c = dim(r.u32("conv out_c")?, "conv out_c")?;
                let padding = match r.u8("conv padding")? {
                    0 => Padding::Valid,
                    1 => Padding::Same,
                    p => return Err(corrupt(format!("unknown padding tag {p}"))),
                };
                if in_c != c {
                    return Err(corrupt(format!(
                        "layer {li}: conv in_c {in_c} does not match the {c}-channel input"
                    )));
                }
                if padding == Padding::Valid && (k > h || k > w_dim) {
                    return Err(corrupt(format!(
                        "layer {li}: {k}x{k} valid conv does not fit a {h}x{w_dim} input"
                    )));
                }
                let wn = out_c
                    .checked_mul(in_c)
                    .and_then(|n| n.checked_mul(k * k))
                    .ok_or_else(|| corrupt("conv weight count overflows"))?;
                let w_levels = r.levels(wn, max_level, "conv weights")?;
                let b_levels = r.levels(out_c, max_level, "conv biases")?;
                layers.push(CompiledLayer::Conv { k, in_c, out_c, padding, w_levels, b_levels });
                spec_layers.push(LayerSpec::Conv { k, out_c, padding });
                (c, h, w_dim) = match padding {
                    Padding::Valid => (out_c, h - k + 1, w_dim - k + 1),
                    Padding::Same => (out_c, h, w_dim),
                };
            }
            1 => {
                let k = dim(r.u32("pool window")?, "pool window")?;
                if k > h || k > w_dim {
                    return Err(corrupt(format!(
                        "layer {li}: {k}x{k} pooling does not fit a {h}x{w_dim} input"
                    )));
                }
                layers.push(CompiledLayer::Pool { k });
                spec_layers.push(LayerSpec::AvgPool { k });
                (h, w_dim) = (h / k, w_dim / k);
            }
            2 | 3 => {
                let in_f = dim(r.u32("fan-in")?, "fan-in")?;
                let out = dim(r.u32("fan-out")?, "fan-out")?;
                let want = c * h * w_dim;
                if in_f != want {
                    return Err(corrupt(format!(
                        "layer {li}: fan-in {in_f} does not match the {want} input features"
                    )));
                }
                let wn = out
                    .checked_mul(in_f)
                    .ok_or_else(|| corrupt("dense weight count overflows"))?;
                let w_levels = r.levels(wn, max_level, "dense weights")?;
                let b_levels = r.levels(out, max_level, "dense biases")?;
                if tag == 2 {
                    layers.push(CompiledLayer::Dense { in_f, out_f: out, w_levels, b_levels });
                    spec_layers.push(LayerSpec::Dense { out });
                } else {
                    layers.push(CompiledLayer::Output { in_f, classes: out, w_levels, b_levels });
                    spec_layers.push(LayerSpec::Output { classes: out });
                }
                (c, h, w_dim) = (out, 1, 1);
            }
            t => return Err(corrupt(format!("unknown layer tag {t}"))),
        }
    }
    let spec = NetworkSpec { name, input_side, layers: spec_layers };
    Ok(CompiledNetwork::from_parts(spec, layers, bits, stream_seed))
}

fn corrupt(reason: impl Into<String>) -> ArtifactError {
    ArtifactError::Corrupt { reason: reason.into() }
}

/// Returns a `'static` copy of a loaded spec name ([`NetworkSpec::name`] is
/// a static string). Known names alias the existing literals; novel names
/// are interned once in a process-wide table, so repeated loads of the same
/// model never grow memory.
fn intern_name(name: &str) -> &'static str {
    for known in ["SNN", "DNN", "tiny", "artifact"] {
        if known == name {
            return known;
        }
    }
    static INTERNED: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut table = INTERNED.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(&existing) = table.iter().find(|&&n| n == name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    table.push(leaked);
    leaked
}

/// Bounds-checked little-endian reader over the artifact bytes. Every read
/// past the end is a typed [`ArtifactError::Truncated`].
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], ArtifactError> {
        let remaining = self.buf.len() - self.pos;
        if n > remaining {
            return Err(ArtifactError::Truncated { context, needed: n, remaining });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, ArtifactError> {
        Ok(self.take(1, context)?[0])
    }

    fn u16(&mut self, context: &'static str) -> Result<u16, ArtifactError> {
        Ok(u16::from_le_bytes(self.take(2, context)?.try_into().expect("len 2")))
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(self.take(4, context)?.try_into().expect("len 4")))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, ArtifactError> {
        Ok(u64::from_le_bytes(self.take(8, context)?.try_into().expect("len 8")))
    }

    fn u128(&mut self, context: &'static str) -> Result<u128, ArtifactError> {
        Ok(u128::from_le_bytes(self.take(16, context)?.try_into().expect("len 16")))
    }

    /// Reads `count` comparator levels, each validated against the
    /// `bits`-bit grid. The byte length is checked before any allocation,
    /// so a garbage count cannot trigger a huge reservation.
    fn levels(
        &mut self,
        count: usize,
        max_level: u64,
        context: &'static str,
    ) -> Result<Vec<u64>, ArtifactError> {
        let bytes = self.take(
            count.checked_mul(8).ok_or_else(|| corrupt("level count overflows"))?,
            context,
        )?;
        let mut out = Vec::with_capacity(count);
        for chunk in bytes.chunks_exact(8) {
            let level = u64::from_le_bytes(chunk.try_into().expect("len 8"));
            if level > max_level {
                return Err(corrupt(format!(
                    "{context}: level {level} above the {max_level} comparator ceiling"
                )));
            }
            out.push(level);
        }
        Ok(out)
    }
}

/// 128-bit FNV-1a (public-domain constants): deterministic, dependency-free,
/// and plenty for content addressing — the guard is against accidental
/// mix-ups and bit rot, not adversaries.
struct Fnv128 {
    state: u128,
}

impl Fnv128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

    fn new() -> Self {
        Fnv128 { state: Self::OFFSET }
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    fn finish(&self) -> u128 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{build_model, ActivationStyle};

    fn tiny_net(seed: u64) -> CompiledNetwork {
        let spec = NetworkSpec::tiny(8);
        let mut model = build_model(&spec, ActivationStyle::AqfpFeature, 3);
        CompiledNetwork::from_model(&spec, &mut model, 8).with_stream_seed(seed)
    }

    #[test]
    fn round_trip_preserves_content_and_bytes() {
        let net = tiny_net(77);
        let bytes = net.to_artifact_bytes();
        let loaded = CompiledNetwork::from_artifact_bytes(&bytes).expect("valid artifact");
        assert_eq!(loaded.fingerprint(), net.fingerprint());
        assert_eq!(loaded.bits(), net.bits());
        assert_eq!(loaded.stream_seed(), net.stream_seed());
        assert_eq!(loaded.spec(), net.spec());
        // Deterministic: re-encoding the decoded network is byte-identical.
        assert_eq!(loaded.to_artifact_bytes(), bytes);
    }

    #[test]
    fn fingerprint_separates_seed_and_bits_twins() {
        let spec = NetworkSpec::tiny(8);
        let mut model = build_model(&spec, ActivationStyle::AqfpFeature, 3);
        let base = CompiledNetwork::from_model(&spec, &mut model, 8);
        let seed_twin = base.clone().with_stream_seed(base.stream_seed() ^ 1);
        let mut model2 = build_model(&spec, ActivationStyle::AqfpFeature, 3);
        let bits_twin = CompiledNetwork::from_model(&spec, &mut model2, 7);
        assert_ne!(base.fingerprint(), seed_twin.fingerprint());
        assert_ne!(base.fingerprint(), bits_twin.fingerprint());
        // Identity, not instance: a clone keeps the fingerprint.
        assert_eq!(base.fingerprint(), base.clone().fingerprint());
    }

    #[test]
    fn truncation_at_every_boundary_is_a_typed_error() {
        let bytes = tiny_net(1).to_artifact_bytes();
        // Probe every prefix on a coarse grid plus the exact field edges.
        let mut cuts: Vec<usize> = (0..bytes.len()).step_by(7).collect();
        cuts.extend([0, 7, 8, 11, 12, 27, 28, 29, 30, bytes.len() - 1]);
        for cut in cuts {
            let err = CompiledNetwork::from_artifact_bytes(&bytes[..cut])
                .expect_err("truncated artifact must not decode");
            assert!(
                matches!(
                    err,
                    ArtifactError::Truncated { .. } | ArtifactError::BadMagic { .. }
                ),
                "cut at {cut}: unexpected error {err}"
            );
        }
    }

    #[test]
    fn corruption_classes_map_to_their_variants() {
        let net = tiny_net(2);
        let good = net.to_artifact_bytes();

        let mut wrong_magic = good.clone();
        wrong_magic[0] ^= 0xFF;
        assert!(matches!(
            CompiledNetwork::from_artifact_bytes(&wrong_magic),
            Err(ArtifactError::BadMagic { .. })
        ));

        let mut future = good.clone();
        future[8..12].copy_from_slice(&(ARTIFACT_VERSION + 1).to_le_bytes());
        assert!(matches!(
            CompiledNetwork::from_artifact_bytes(&future),
            Err(ArtifactError::UnsupportedVersion { found, supported })
                if found == ARTIFACT_VERSION + 1 && supported == ARTIFACT_VERSION
        ));

        // Rewrite one level to a different in-range value: the payload
        // still parses, so only the fingerprint catches the alteration.
        let mut flipped = good.clone();
        let last_level = good.len() - 8; // final 8-byte level word (LE)
        let new_level: u64 = if good[last_level..] == [0; 8] { 1 } else { 0 };
        flipped[last_level..].copy_from_slice(&new_level.to_le_bytes());
        assert!(matches!(
            CompiledNetwork::from_artifact_bytes(&flipped),
            Err(ArtifactError::FingerprintMismatch { .. })
        ));

        let mut trailing = good.clone();
        trailing.push(0);
        assert!(matches!(
            CompiledNetwork::from_artifact_bytes(&trailing),
            Err(ArtifactError::Corrupt { .. })
        ));

        assert!(matches!(
            CompiledNetwork::from_artifact_bytes(&[]),
            Err(ArtifactError::Truncated { .. })
        ));

        let garbage: Vec<u8> = (0..256u32).map(|i| (i * 89 + 7) as u8).collect();
        assert!(CompiledNetwork::from_artifact_bytes(&garbage).is_err());
    }

    #[test]
    fn load_on_a_missing_file_is_an_io_error() {
        let err = CompiledNetwork::load("/nonexistent/dir/model.ascm")
            .expect_err("missing file must not load");
        assert!(matches!(err, ArtifactError::Io(_)));
        assert!(err.to_string().contains("I/O"));
    }

    #[test]
    fn interned_names_round_trip() {
        // A known name aliases the literal; an unknown one is interned once.
        assert_eq!(intern_name("tiny"), "tiny");
        let a = intern_name("custom-model-x");
        let b = intern_name("custom-model-x");
        assert!(std::ptr::eq(a, b), "repeated loads must reuse the interned name");
    }
}
