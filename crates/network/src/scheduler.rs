//! The shared lane-group scheduler: both batched front-ends — the
//! one-shot [`InferenceEngine`](crate::InferenceEngine) and the
//! early-exit [`StreamingEngine`](crate::StreamingEngine) — drive images
//! through the batch-transposed kernel path in words of up to 64 lanes,
//! with per-lane schedule checkpoints and retire-and-refill compaction.
//!
//! # Lane ownership
//!
//! A lane owns exactly one in-flight image's [`ExecState`]; the lane's
//! position in the word is just its index in the live-lane list and never
//! affects bits (the carry-save plane arithmetic is bitwise per-lane
//! independent). The group advances by the *minimum* distance to any live
//! lane's next checkpoint, so every lane lands exactly on its own
//! checkpoints; splitting one lane's schedule chunk into several
//! sub-advances is safe because any partition of N cycles is bit-identical
//! (the partition invariant of [`ExecPlan::advance`]).
//!
//! # Retire and refill
//!
//! The exit policy is consulted only for a lane sitting exactly at its own
//! checkpoint, with the same per-image bookkeeping the scalar streaming
//! loop keeps — so a batched run retires every image at the same cycle,
//! with the same scores, as the scalar path. A retired lane's `ExecState`
//! goes to a free pool and is immediately re-`begin`-ed on the next queued
//! image, keeping the word dense instead of dragging finished images to
//! full N. Refilled lanes start at absolute cycle 0 while survivors sit
//! mid-stream; [`ExecPlan::advance_batch_in`] gathers the
//! image-independent streams per lane at each lane's own offset, which is
//! what makes compaction bit-drift-free.

use aqfp_sc_bitstream::WORD_BITS;
use aqfp_sc_nn::Tensor;

use crate::plan::{BatchArena, ExecPlan, ExecState, Platform};
use crate::streaming::ChunkSchedule;

/// Smallest lane group the batch-transposed kernel path is worth engaging
/// for; smaller groups run the scalar core, which is bit-identical — the
/// threshold is purely a throughput knob.
///
/// Break-even note (trained tiny net, N=512, one thread, one-shot
/// full-length schedule): on AQFP the lane path is ~1.6× the scalar core
/// at 16 lanes, ~2× at 24, ~3× at 32, and ~5.5× at 64 — the per-chunk
/// pack and SNG-broadcast overhead is amortised over the lane count. On
/// CMOS the bit-parallel scalar core is much faster to begin with, so the
/// crossover sits higher: 16 lanes is a ~0.8× *regression* and the lane
/// path only pulls ahead from ~24 lanes (~1.1×, climbing to ~1.7× at 64).
pub fn lane_min(platform: Platform) -> usize {
    match platform {
        Platform::Aqfp => 16,
        Platform::Cmos => 24,
    }
}

/// Per-lane early-exit decision logic, consulted only when a lane reaches
/// one of its own schedule checkpoints with cycles still remaining. The
/// `Book` is the per-image bookkeeping carried across checkpoints (e.g.
/// the argmax stability streak); it starts fresh at `Default` every time a
/// lane is (re)filled.
pub(crate) trait LanePolicy {
    /// Cross-checkpoint bookkeeping carried per lane.
    type Book: Default;

    /// Returns `true` to retire the lane early. Must depend only on `plan`,
    /// `state`, and `book` — never on lane position or group composition —
    /// so batched and scalar runs make identical decisions.
    fn exit(&self, plan: &ExecPlan, state: &ExecState, book: &mut Self::Book) -> bool;
}

/// A policy that never exits early: one-shot batch semantics (every lane
/// runs to full N; with a full-length schedule there is exactly one
/// checkpoint, at N).
pub(crate) struct NoExit;

impl LanePolicy for NoExit {
    type Book = ();

    fn exit(&self, _plan: &ExecPlan, _state: &ExecState, _book: &mut ()) -> bool {
        false
    }
}

/// Result of one lane's run, in the same terms as the scalar streaming
/// loop reports.
pub(crate) struct LaneOutcome {
    /// Class scores at the cycle the lane retired.
    pub scores: Vec<f64>,
    /// Cycles consumed.
    pub cycles: usize,
    /// Schedule checkpoints reached (the scalar loop's chunk count).
    pub chunks: usize,
    /// Whether the policy fired before full N.
    pub early_exit: bool,
}

/// Occupancy accounting of a lane-group run: how full the machine word was
/// kept across kernel advance steps.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GroupStats {
    /// Kernel advance steps taken — one batch-transposed group advance, or
    /// one scalar advance of a single lane on the small-group fallback.
    pub steps: u64,
    /// Total lanes advanced, summed over all steps.
    pub lane_steps: u64,
}

impl GroupStats {
    /// Mean active lanes per advance step (0.0 for an empty run).
    pub fn avg_lanes(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.lane_steps as f64 / self.steps as f64
        }
    }

    /// Folds another accumulator in (workers sum their per-slice stats).
    pub fn merge(&mut self, other: GroupStats) {
        self.steps += other.steps;
        self.lane_steps += other.lane_steps;
    }
}

/// One live lane: an in-flight image, its next checkpoint, and the
/// policy's per-image bookkeeping.
struct Lane<B> {
    state: ExecState,
    /// Index into the caller's image slice (results keep input order no
    /// matter when lanes retire).
    img: usize,
    /// Schedule checkpoints reached so far (= the schedule index of the
    /// chunk currently in flight).
    chunk_idx: usize,
    /// Absolute cycle of the next policy consult, capped at N.
    checkpoint: usize,
    book: B,
}

/// Drives `images` (with per-image `seeds`) to completion through the
/// plan, keeping up to `lane_limit` lanes in flight and consulting
/// `policy` at each lane's own schedule checkpoints. Groups below
/// `min_batch_lanes` advance through the scalar core instead (bit-identical
/// either way — the threshold is purely a throughput knob). Returns one
/// outcome per image, in input order, and accumulates word-occupancy
/// accounting into `stats`.
#[allow(clippy::too_many_arguments)] // the scheduler knobs are all orthogonal
pub(crate) fn drive_lane_groups<P: LanePolicy>(
    plan: &ExecPlan,
    images: &[&Tensor],
    seeds: &[u64],
    schedule: ChunkSchedule,
    policy: &P,
    lane_limit: usize,
    min_batch_lanes: usize,
    stats: &mut GroupStats,
) -> Vec<LaneOutcome> {
    assert_eq!(images.len(), seeds.len(), "one seed per image");
    let n = plan.stream_len();
    let lane_limit = lane_limit.clamp(1, WORD_BITS);
    let mut results: Vec<Option<LaneOutcome>> = Vec::new();
    results.resize_with(images.len(), || None);
    let mut free: Vec<ExecState> = Vec::new();
    let mut lanes: Vec<Lane<P::Book>> = Vec::new();
    let mut pending = 0usize;
    let mut arena = BatchArena::default();
    loop {
        // Refill (and the initial fill): recycled states re-`begin` on
        // queued images until the word is at capacity.
        while lanes.len() < lane_limit && pending < images.len() {
            let img = pending;
            pending += 1;
            let mut state = free.pop().unwrap_or_else(|| plan.new_state());
            plan.begin(&mut state, images[img], seeds[img]);
            if n == 0 {
                // Degenerate zero-length stream: the scalar loop never
                // advances and never consults the policy.
                results[img] = Some(LaneOutcome {
                    scores: plan.scores(&state),
                    cycles: 0,
                    chunks: 0,
                    early_exit: false,
                });
                free.push(state);
                continue;
            }
            lanes.push(Lane {
                checkpoint: schedule.len_at(0).min(n),
                state,
                img,
                chunk_idx: 0,
                book: P::Book::default(),
            });
        }
        if lanes.is_empty() {
            break;
        }
        // Advance the whole group to the nearest per-lane checkpoint.
        // Live lanes always have checkpoint > cycles, so d >= 1 and the
        // loop makes progress every iteration.
        let d = lanes.iter().map(|l| l.checkpoint - l.state.cycles()).min().unwrap();
        if lanes.len() >= min_batch_lanes {
            let mut advanced = 0usize;
            while advanced < d {
                let mut refs: Vec<&mut ExecState> =
                    lanes.iter_mut().map(|l| &mut l.state).collect();
                let got = plan.advance_batch_in(&mut refs, d - advanced, &mut arena);
                debug_assert!(got > 0, "live lanes always have cycles remaining");
                advanced += got;
                stats.steps += 1;
                stats.lane_steps += lanes.len() as u64;
            }
        } else {
            // Below the lane break-even the pack/transpose overhead
            // dominates: advance each lane straight to its own checkpoint
            // through the scalar core.
            for l in lanes.iter_mut() {
                let want = l.checkpoint - l.state.cycles();
                plan.advance(&mut l.state, want);
                stats.steps += 1;
                stats.lane_steps += 1;
            }
        }
        // Consult the policy for every lane sitting at its checkpoint,
        // with the scalar loop's exact semantics: a lane that just
        // consumed its full budget retires *without* a policy consult
        // (`early_exit = false`).
        let mut i = 0usize;
        while i < lanes.len() {
            let retire = {
                let lane = &mut lanes[i];
                if lane.state.cycles() < lane.checkpoint {
                    i += 1;
                    continue;
                }
                lane.chunk_idx += 1;
                let consumed = lane.state.cycles();
                if consumed >= n {
                    Some(false)
                } else if policy.exit(plan, &lane.state, &mut lane.book) {
                    Some(true)
                } else {
                    lane.checkpoint = (consumed + schedule.len_at(lane.chunk_idx)).min(n);
                    None
                }
            };
            match retire {
                Some(early_exit) => {
                    let lane = lanes.swap_remove(i);
                    results[lane.img] = Some(LaneOutcome {
                        scores: plan.scores(&lane.state),
                        cycles: lane.state.cycles(),
                        chunks: lane.chunk_idx,
                        early_exit,
                    });
                    free.push(lane.state);
                }
                None => i += 1,
            }
        }
    }
    results.into_iter().map(|r| r.expect("every image retired")).collect()
}
