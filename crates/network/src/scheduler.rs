//! The shared lane-group scheduler: both batched front-ends — the
//! one-shot [`InferenceEngine`](crate::InferenceEngine) and the
//! early-exit [`StreamingEngine`](crate::StreamingEngine) — drive images
//! through the batch-transposed kernel path in stripes of up to
//! [`MAX_LANES`] lanes (`64·W` for stripe width `W ∈ {1, 2, 4}`), with
//! per-lane schedule checkpoints and retire-and-refill compaction.
//!
//! # Lane ownership
//!
//! A lane owns exactly one in-flight image's [`ExecState`]; the lane's
//! position in the word is just its index in the live-lane list and never
//! affects bits (the carry-save plane arithmetic is bitwise per-lane
//! independent). The group advances by the *minimum* distance to any live
//! lane's next checkpoint, so every lane lands exactly on its own
//! checkpoints; splitting one lane's schedule chunk into several
//! sub-advances is safe because any partition of N cycles is bit-identical
//! (the partition invariant of [`ExecPlan::advance`]).
//!
//! # Retire and refill
//!
//! The exit policy is consulted only for a lane sitting exactly at its own
//! checkpoint, with the same per-image bookkeeping the scalar streaming
//! loop keeps — so a batched run retires every image at the same cycle,
//! with the same scores, as the scalar path. A retired lane's `ExecState`
//! goes to a free pool and is immediately re-`begin`-ed on the next queued
//! image, keeping the stripe dense instead of dragging finished images to
//! full N. Refilled lanes start at absolute cycle 0 while survivors sit
//! mid-stream; [`ExecPlan::advance_batch_in`] gathers the
//! image-independent streams per lane at each lane's own offset, which is
//! what makes compaction bit-drift-free. Each group advance runs at the
//! narrowest stripe width covering the live lane count
//! ([`ExecPlan::advance_batch_striped`]) — stripe-width independence of
//! the kernels makes the per-step choice invisible in the bits.
//!
//! # Live sources
//!
//! The core loop ([`drive_lane_source`]) pulls work from a [`JobSource`]
//! rather than a pre-known slice: at every refill point it asks the source
//! for the next job, so a serving front-end can feed requests that arrive
//! *while a group is already in flight* straight into freshly retired
//! lanes. The slice-based [`drive_lane_groups`] is a thin adapter over the
//! same core; because lane composition never affects bits (each lane's
//! streams are gathered at its own offset), a job's result is independent
//! of when the source produced it.

use std::borrow::Borrow;

use aqfp_sc_bitstream::MAX_LANES;
use aqfp_sc_nn::Tensor;

use crate::plan::{ExecPlan, ExecState, Platform, StripeArenas};
use crate::streaming::ChunkSchedule;

/// Smallest lane group the batch-transposed kernel path is worth engaging
/// for; smaller groups run the scalar core, which is bit-identical — the
/// threshold is purely a throughput knob.
///
/// Measured break-even (the `calibrate` bench in `crates/bench`: trained
/// tiny net, N=512, one thread, one-shot full-length schedule — re-run it
/// when retuning for a new host; numbers below from the reference
/// container, see ROADMAP): with the fused count→FSM sweeps the AQFP lane
/// path is already ~1.7× the scalar core at 8 lanes (~3.2× at 16, ~6× at
/// 32, ~9× at 64, ~11× at 256), so every group the scheduler can form is
/// worth batching. On CMOS the bit-parallel scalar core is much faster to
/// begin with: 8 lanes is exact break-even (1.0×, inside host noise), and
/// the lane path pulls clearly ahead from 16 lanes (~2×, climbing to
/// ~5.7× at 64 and ~6.3× at 256 with full stripes).
pub fn lane_min(platform: Platform) -> usize {
    match platform {
        Platform::Aqfp => 8,
        Platform::Cmos => 16,
    }
}

/// Stripe width `W` (64-bit words per [`Stripe`](aqfp_sc_bitstream::Stripe),
/// i.e. `64·W` lanes per group) the batch-transposed path targets on this
/// platform — the lane-group capacity the front-ends request. `W = 1` is
/// the zero-regression 64-lane baseline; the scheduler still drops to the
/// narrowest width covering the live lanes per step, so a wide target
/// never penalises a draining group.
///
/// Measured break-even (same `calibrate` bench as [`lane_min`]): on both
/// platforms the per-chunk cost of a group advance is dominated by work
/// proportional to the stripe width only while lanes are live, and the
/// auto-vectorised `[u64; W]` plane ops amortise pack/broadcast overhead
/// further with every doubling — W=4 is the widest supported stripe and
/// measures fastest per image on both platforms at full occupancy
/// (AQFP ~10.9× scalar, CMOS ~6.3× scalar at 256 lanes), so both pick
/// it. The 128-lane row trails 64 slightly on both platforms (a W=2
/// stripe pays two words per op over lanes a single full word already
/// covers), which is why the scheduler drops to the narrowest covering
/// width as a group drains instead of staying wide.
pub fn stripe_width(platform: Platform) -> usize {
    match platform {
        Platform::Aqfp => 4,
        Platform::Cmos => 4,
    }
}

/// Per-lane early-exit decision logic, consulted only when a lane reaches
/// one of its own schedule checkpoints with cycles still remaining. The
/// `Book` is the per-image bookkeeping carried across checkpoints (e.g.
/// the argmax stability streak); it starts fresh at `Default` every time a
/// lane is (re)filled.
pub(crate) trait LanePolicy {
    /// Cross-checkpoint bookkeeping carried per lane.
    type Book: Default;

    /// Returns `true` to retire the lane early. Must depend only on `plan`,
    /// `state`, and `book` — never on lane position or group composition —
    /// so batched and scalar runs make identical decisions.
    fn exit(&self, plan: &ExecPlan, state: &ExecState, book: &mut Self::Book) -> bool;
}

/// A policy that never exits early: one-shot batch semantics (every lane
/// runs to full N; with a full-length schedule there is exactly one
/// checkpoint, at N).
pub(crate) struct NoExit;

impl LanePolicy for NoExit {
    type Book = ();

    fn exit(&self, _plan: &ExecPlan, _state: &ExecState, _book: &mut ()) -> bool {
        false
    }
}

/// Result of one lane's run, in the same terms as the scalar streaming
/// loop reports.
pub(crate) struct LaneOutcome {
    /// Class scores at the cycle the lane retired.
    pub scores: Vec<f64>,
    /// Cycles consumed.
    pub cycles: usize,
    /// Schedule checkpoints reached (the scalar loop's chunk count).
    pub chunks: usize,
    /// Whether the policy fired before full N.
    pub early_exit: bool,
}

/// Occupancy accounting of a lane-group run: how full the machine word was
/// kept across kernel advance steps.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GroupStats {
    /// Kernel advance steps taken — one batch-transposed group advance, or
    /// one scalar advance of a single lane on the small-group fallback.
    pub steps: u64,
    /// Total lanes advanced, summed over all steps.
    pub lane_steps: u64,
}

impl GroupStats {
    /// Mean active lanes per advance step (0.0 for an empty run).
    pub fn avg_lanes(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.lane_steps as f64 / self.steps as f64
        }
    }

    /// Folds another accumulator in (workers sum their per-slice stats).
    pub fn merge(&mut self, other: GroupStats) {
        self.steps += other.steps;
        self.lane_steps += other.lane_steps;
    }
}

/// One unit of work pulled from a [`JobSource`]: an image, its stream
/// seed, and an opaque tag the source uses to route the outcome back to
/// whoever asked for it.
pub(crate) struct SourcedJob<I> {
    pub image: I,
    pub seed: u64,
    pub tag: u64,
}

/// A feed of classification jobs for the lane-group core. `next_job` is
/// consulted at every refill point — including mid-run, after lanes
/// retire — so the source may produce jobs that did not exist when the
/// drive started (a live request queue). `deliver` receives each job's
/// outcome as soon as its lane retires, in retirement order (not
/// submission order).
pub(crate) trait JobSource {
    /// How the source hands over image data. `&Tensor` for slice-backed
    /// sources (no copy), owned `Tensor` for queues that transfer
    /// ownership; [`ExecPlan::begin`] copies what it needs, so the image
    /// is dropped once the lane starts.
    type Img: Borrow<Tensor>;

    /// The next job ready *right now*, or `None` to leave the lane empty
    /// this round (the core asks again at the next refill point while any
    /// lane is live; once no lanes are live and `next_job` returns `None`,
    /// the drive returns).
    fn next_job(&mut self) -> Option<SourcedJob<Self::Img>>;

    /// Outcome delivery for the job tagged `tag`.
    fn deliver(&mut self, tag: u64, outcome: LaneOutcome);
}

/// One live lane: an in-flight image, its next checkpoint, and the
/// policy's per-image bookkeeping.
struct Lane<B> {
    state: ExecState,
    /// The source's routing tag for this job (results are delivered under
    /// it no matter when the lane retires).
    tag: u64,
    /// Schedule checkpoints reached so far (= the schedule index of the
    /// chunk currently in flight).
    chunk_idx: usize,
    /// Absolute cycle of the next policy consult, capped at N.
    checkpoint: usize,
    book: B,
}

/// Slice adapter: feeds a pre-known image/seed slice to the core and
/// collects outcomes back into input order.
struct SliceFeed<'a> {
    images: &'a [&'a Tensor],
    seeds: &'a [u64],
    next: usize,
    results: Vec<Option<LaneOutcome>>,
}

impl<'a> JobSource for SliceFeed<'a> {
    type Img = &'a Tensor;

    fn next_job(&mut self) -> Option<SourcedJob<&'a Tensor>> {
        let i = self.next;
        if i >= self.images.len() {
            return None;
        }
        self.next += 1;
        Some(SourcedJob { image: self.images[i], seed: self.seeds[i], tag: i as u64 })
    }

    fn deliver(&mut self, tag: u64, outcome: LaneOutcome) {
        self.results[tag as usize] = Some(outcome);
    }
}

/// Drives `images` (with per-image `seeds`) to completion through the
/// plan, keeping up to `lane_limit` lanes in flight and consulting
/// `policy` at each lane's own schedule checkpoints. Groups below
/// `min_batch_lanes` advance through the scalar core instead (bit-identical
/// either way — the threshold is purely a throughput knob). Returns one
/// outcome per image, in input order, and accumulates word-occupancy
/// accounting into `stats`.
#[allow(clippy::too_many_arguments)] // the scheduler knobs are all orthogonal
pub(crate) fn drive_lane_groups<P: LanePolicy>(
    plan: &ExecPlan,
    images: &[&Tensor],
    seeds: &[u64],
    schedule: ChunkSchedule,
    policy: &P,
    lane_limit: usize,
    min_batch_lanes: usize,
    stats: &mut GroupStats,
) -> Vec<LaneOutcome> {
    assert_eq!(images.len(), seeds.len(), "one seed per image");
    let mut feed = SliceFeed {
        images,
        seeds,
        next: 0,
        results: {
            let mut r: Vec<Option<LaneOutcome>> = Vec::new();
            r.resize_with(images.len(), || None);
            r
        },
    };
    drive_lane_source(plan, &mut feed, schedule, policy, lane_limit, min_batch_lanes, stats);
    feed.results.into_iter().map(|r| r.expect("every image retired")).collect()
}

/// The lane-group core over a live [`JobSource`]: keeps up to `lane_limit`
/// lanes in flight, refills from the source whenever lanes are free
/// (including mid-run, after retirements), and consults `policy` at each
/// lane's own schedule checkpoints. Returns once the source is drained and
/// every lane has retired. Outcomes go back through
/// [`JobSource::deliver`]; word-occupancy accounting accumulates into
/// `stats`.
#[allow(clippy::too_many_arguments)] // the scheduler knobs are all orthogonal
pub(crate) fn drive_lane_source<P: LanePolicy, S: JobSource>(
    plan: &ExecPlan,
    source: &mut S,
    schedule: ChunkSchedule,
    policy: &P,
    lane_limit: usize,
    min_batch_lanes: usize,
    stats: &mut GroupStats,
) {
    let n = plan.stream_len();
    let lane_limit = lane_limit.clamp(1, MAX_LANES);
    let mut free: Vec<ExecState> = Vec::new();
    let mut lanes: Vec<Lane<P::Book>> = Vec::new();
    let mut arenas = StripeArenas::default();
    loop {
        // Refill (and the initial fill): recycled states re-`begin` on
        // sourced jobs until the word is at capacity or the source has
        // nothing ready.
        while lanes.len() < lane_limit {
            let Some(job) = source.next_job() else { break };
            let mut state = free.pop().unwrap_or_else(|| plan.new_state());
            plan.begin(&mut state, job.image.borrow(), job.seed);
            if n == 0 {
                // Degenerate zero-length stream: the scalar loop never
                // advances and never consults the policy.
                let outcome = LaneOutcome {
                    scores: plan.scores(&state),
                    cycles: 0,
                    chunks: 0,
                    early_exit: false,
                };
                source.deliver(job.tag, outcome);
                free.push(state);
                continue;
            }
            lanes.push(Lane {
                checkpoint: schedule.len_at(0).min(n),
                state,
                tag: job.tag,
                chunk_idx: 0,
                book: P::Book::default(),
            });
        }
        if lanes.is_empty() {
            break;
        }
        // Advance the whole group to the nearest per-lane checkpoint.
        // Live lanes always have checkpoint > cycles, so d >= 1 and the
        // loop makes progress every iteration.
        let d = lanes.iter().map(|l| l.checkpoint - l.state.cycles()).min().unwrap();
        if lanes.len() >= min_batch_lanes {
            let mut advanced = 0usize;
            while advanced < d {
                let mut refs: Vec<&mut ExecState> =
                    lanes.iter_mut().map(|l| &mut l.state).collect();
                let got = plan.advance_batch_striped(&mut refs, d - advanced, &mut arenas);
                debug_assert!(got > 0, "live lanes always have cycles remaining");
                advanced += got;
                stats.steps += 1;
                stats.lane_steps += lanes.len() as u64;
            }
        } else {
            // Below the lane break-even the pack/transpose overhead
            // dominates: advance each lane straight to its own checkpoint
            // through the scalar core.
            for l in lanes.iter_mut() {
                let want = l.checkpoint - l.state.cycles();
                plan.advance(&mut l.state, want);
                stats.steps += 1;
                stats.lane_steps += 1;
            }
        }
        // Consult the policy for every lane sitting at its checkpoint,
        // with the scalar loop's exact semantics: a lane that just
        // consumed its full budget retires *without* a policy consult
        // (`early_exit = false`).
        let mut i = 0usize;
        while i < lanes.len() {
            let retire = {
                let lane = &mut lanes[i];
                if lane.state.cycles() < lane.checkpoint {
                    i += 1;
                    continue;
                }
                lane.chunk_idx += 1;
                let consumed = lane.state.cycles();
                if consumed >= n {
                    Some(false)
                } else if policy.exit(plan, &lane.state, &mut lane.book) {
                    Some(true)
                } else {
                    lane.checkpoint = (consumed + schedule.len_at(lane.chunk_idx)).min(n);
                    None
                }
            };
            match retire {
                Some(early_exit) => {
                    let lane = lanes.swap_remove(i);
                    let outcome = LaneOutcome {
                        scores: plan.scores(&lane.state),
                        cycles: lane.state.cycles(),
                        chunks: lane.chunk_idx,
                        early_exit,
                    };
                    source.deliver(lane.tag, outcome);
                    free.push(lane.state);
                }
                None => i += 1,
            }
        }
    }
}
