//! Quantised SC compilation: mapping trained float models onto the
//! comparator grid. Bit-level inference lives in [`crate::plan`]; the
//! serial entry points here construct a single-use [`ExecPlan`] and run
//! one full-length chunk through it.

use aqfp_sc_nn::{Padding, Sequential, Tensor};

use crate::arch::{LayerSpec, NetworkSpec};
use crate::engine::InferenceEngine;
use crate::plan::{argmax, ExecPlan, Platform};

/// One compiled (quantised) layer.
#[derive(Debug, Clone)]
pub enum CompiledLayer {
    /// Convolution with weights/biases quantised to comparator levels.
    Conv {
        /// Kernel side.
        k: usize,
        /// Input channels.
        in_c: usize,
        /// Output channels.
        out_c: usize,
        /// Padding mode.
        padding: Padding,
        /// Comparator level of every weight, `[out_c][in_c·k·k]` row-major.
        w_levels: Vec<u64>,
        /// Comparator level of every bias.
        b_levels: Vec<u64>,
    },
    /// Average pooling window.
    Pool {
        /// Window side.
        k: usize,
    },
    /// Fully-connected feature-extraction layer.
    Dense {
        /// Input features.
        in_f: usize,
        /// Output features.
        out_f: usize,
        /// Comparator level of every weight, `[out_f][in_f]` row-major.
        w_levels: Vec<u64>,
        /// Comparator level of every bias.
        b_levels: Vec<u64>,
    },
    /// The categorization layer.
    Output {
        /// Input features.
        in_f: usize,
        /// Class count.
        classes: usize,
        /// Comparator level of every weight, `[classes][in_f]` row-major.
        w_levels: Vec<u64>,
        /// Comparator level of every bias.
        b_levels: Vec<u64>,
    },
}

/// A trained network quantised onto the SC hardware grid, runnable on both
/// the AQFP (sorter/majority-chain) and CMOS (APC/Btanh/mux) paths.
#[derive(Debug, Clone)]
pub struct CompiledNetwork {
    spec: NetworkSpec,
    layers: Vec<CompiledLayer>,
    bits: u32,
    stream_seed: u64,
}

/// Default weight-stream seed: the hardwired SNGs feeding the weight
/// comparators are physically distinct from the input SNGs, so their
/// randomness is a property of the compiled chip, not of the per-image
/// seed.
const DEFAULT_STREAM_SEED: u64 = 0x5EED_2019_15CA_0001;

impl CompiledNetwork {
    /// Quantises the trainable layers of `model` (built by
    /// [`crate::build_model`] from the same `spec`) to `bits`-bit
    /// comparator levels.
    ///
    /// # Panics
    ///
    /// Panics when the model does not structurally match the spec.
    pub fn from_model(spec: &NetworkSpec, model: &mut Sequential, bits: u32) -> Self {
        let shapes = spec.shapes();
        let mut trainable: Vec<Vec<f32>> = model
            .layers()
            .iter()
            .filter(|l| matches!(l.name(), "conv2d" | "dense"))
            .map(|l| l.params())
            .collect();
        trainable.reverse(); // pop from the front via pop()
        let quant = |v: f32| aqfp_sc_nn::quantize_bipolar(v as f64, bits).1;
        let mut layers = Vec::new();
        for (i, layer) in spec.layers.iter().enumerate() {
            let (in_c, _, _) = shapes[i];
            match layer {
                LayerSpec::Conv { k, out_c, padding } => {
                    let params = trainable.pop().expect("model is missing a conv layer");
                    let wn = out_c * in_c * k * k;
                    assert_eq!(params.len(), wn + out_c, "conv parameter mismatch");
                    layers.push(CompiledLayer::Conv {
                        k: *k,
                        in_c,
                        out_c: *out_c,
                        padding: *padding,
                        w_levels: params[..wn].iter().map(|&v| quant(v)).collect(),
                        b_levels: params[wn..].iter().map(|&v| quant(v)).collect(),
                    });
                }
                LayerSpec::AvgPool { k } => layers.push(CompiledLayer::Pool { k: *k }),
                LayerSpec::Dense { out } => {
                    let params = trainable.pop().expect("model is missing a dense layer");
                    let in_f = shapes[i].0 * shapes[i].1 * shapes[i].2;
                    let wn = in_f * out;
                    assert_eq!(params.len(), wn + out, "dense parameter mismatch");
                    layers.push(CompiledLayer::Dense {
                        in_f,
                        out_f: *out,
                        w_levels: params[..wn].iter().map(|&v| quant(v)).collect(),
                        b_levels: params[wn..].iter().map(|&v| quant(v)).collect(),
                    });
                }
                LayerSpec::Output { classes } => {
                    let params = trainable.pop().expect("model is missing the output layer");
                    let in_f = shapes[i].0 * shapes[i].1 * shapes[i].2;
                    let wn = in_f * classes;
                    assert_eq!(params.len(), wn + classes, "output parameter mismatch");
                    layers.push(CompiledLayer::Output {
                        in_f,
                        classes: *classes,
                        w_levels: params[..wn].iter().map(|&v| quant(v)).collect(),
                        b_levels: params[wn..].iter().map(|&v| quant(v)).collect(),
                    });
                }
            }
        }
        assert!(trainable.is_empty(), "model has extra trainable layers");
        CompiledNetwork { spec: spec.clone(), layers, bits, stream_seed: DEFAULT_STREAM_SEED }
    }

    /// Reassembles a network from decoded artifact parts (the loader has
    /// already validated shape consistency and level ranges).
    pub(crate) fn from_parts(
        spec: NetworkSpec,
        layers: Vec<CompiledLayer>,
        bits: u32,
        stream_seed: u64,
    ) -> Self {
        CompiledNetwork { spec, layers, bits, stream_seed }
    }

    /// The network spec this was compiled from.
    pub fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    /// The compiled (quantised) layer stack.
    pub fn layers(&self) -> &[CompiledLayer] {
        &self.layers
    }

    /// Comparator resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Seed of the weight-stream RNG domain. Weight/bias streams depend
    /// only on the quantised weights and this seed — never on the image —
    /// which is what lets [`InferenceEngine`] cache them.
    pub fn stream_seed(&self) -> u64 {
        self.stream_seed
    }

    /// Replaces the weight-stream seed (a different hardwired RNG draw for
    /// the weight SNGs; engines built afterwards cache different streams).
    pub fn with_stream_seed(mut self, seed: u64) -> Self {
        self.stream_seed = seed;
        self
    }

    /// Classifies an image on the AQFP path (sorter-based feature
    /// extraction, sorter pooling, majority-chain categorization, true-RNG
    /// number generators).
    ///
    /// `seed` drives only the image-domain streams (pixels, pooling
    /// selectors); weight streams come from [`CompiledNetwork::stream_seed`].
    /// Repeated calls build a throwaway [`ExecPlan`] each time — construct
    /// an [`InferenceEngine`] and use its batch APIs to amortise the
    /// weight-stream generation.
    pub fn classify_aqfp(&self, image: &Tensor, stream_len: usize, seed: u64) -> usize {
        argmax(&self.scores_on(image, stream_len, seed, Platform::Aqfp))
    }

    /// Classifies an image on the CMOS SC baseline path (APC + Btanh
    /// counters, mux pooling, pseudo-random number generators).
    pub fn classify_cmos(&self, image: &Tensor, stream_len: usize, seed: u64) -> usize {
        argmax(&self.scores_on(image, stream_len, seed, Platform::Cmos))
    }

    /// Raw AQFP-path class scores (bipolar values of the majority-chain
    /// outputs).
    pub fn scores_aqfp(&self, image: &Tensor, stream_len: usize, seed: u64) -> Vec<f64> {
        self.scores_on(image, stream_len, seed, Platform::Aqfp)
    }

    /// The shared serial path: one throwaway plan, one full-length chunk.
    fn scores_on(
        &self,
        image: &Tensor,
        stream_len: usize,
        seed: u64,
        platform: Platform,
    ) -> Vec<f64> {
        let plan = ExecPlan::new(self, stream_len, platform);
        let mut state = plan.new_state();
        plan.run_one_shot(&mut state, image, seed)
    }

    /// Accuracy over a labelled set on the chosen path (`cmos = false` for
    /// AQFP), evaluated through a batched [`InferenceEngine`]: weight
    /// streams are generated once and images fan out over the worker pool,
    /// with per-image seeds derived via [`InferenceEngine::image_seed`].
    ///
    /// Returns `None` for an empty sample set (no accuracy is defined, and
    /// 0.0 would read as a 0 %-accurate model).
    pub fn evaluate(
        &self,
        samples: &[(Tensor, usize)],
        stream_len: usize,
        seed: u64,
        cmos: bool,
    ) -> Option<f64> {
        let platform = if cmos { Platform::Cmos } else { Platform::Aqfp };
        InferenceEngine::new(self, stream_len, platform).evaluate(samples, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{build_model, ActivationStyle};
    use aqfp_sc_data::synthetic_digits;

    fn trained_tiny() -> (NetworkSpec, Sequential) {
        let spec = NetworkSpec::tiny(8);
        let mut model = build_model(&spec, ActivationStyle::AqfpFeature, 5);
        // Train on downscaled synthetic digits (8x8 crops of the 28x28).
        let data: Vec<(Tensor, usize)> = synthetic_digits(240, 9)
            .into_iter()
            .map(|(img, label)| {
                let mut small = Tensor::zeros(vec![1, 8, 8]);
                for y in 0..8 {
                    for x in 0..8 {
                        // 28->8 by sampling every 3rd pixel around centre.
                        small.data_mut()[y * 8 + x] = img.at3(0, 2 + y * 3, 2 + x * 3);
                    }
                }
                (small, label)
            })
            .collect();
        for _ in 0..12 {
            model.train_epoch(&data, 0.05, 0.9, 16);
        }
        (spec, model)
    }

    #[test]
    fn compile_produces_levels_within_range() {
        let (spec, mut model) = trained_tiny();
        let compiled = CompiledNetwork::from_model(&spec, &mut model, 8);
        for layer in &compiled.layers {
            let levels: &[u64] = match layer {
                CompiledLayer::Conv { w_levels, .. } => w_levels,
                CompiledLayer::Dense { w_levels, .. } => w_levels,
                CompiledLayer::Output { w_levels, .. } => w_levels,
                CompiledLayer::Pool { .. } => continue,
            };
            assert!(levels.iter().all(|&l| l <= 256));
        }
    }

    #[test]
    fn sc_paths_agree_with_float_on_most_samples() {
        let (spec, mut model) = trained_tiny();
        let data: Vec<(Tensor, usize)> = synthetic_digits(40, 77)
            .into_iter()
            .map(|(img, label)| {
                let mut small = Tensor::zeros(vec![1, 8, 8]);
                for y in 0..8 {
                    for x in 0..8 {
                        small.data_mut()[y * 8 + x] = img.at3(0, 2 + y * 3, 2 + x * 3);
                    }
                }
                (small, label)
            })
            .collect();
        let float_preds: Vec<usize> = data.iter().map(|(x, _)| model.predict(x)).collect();
        let compiled = CompiledNetwork::from_model(&spec, &mut model, 8);
        let mut agree_aqfp = 0usize;
        for (i, (x, _)) in data.iter().enumerate() {
            let sc = compiled.classify_aqfp(x, 1024, 1000 + i as u64);
            if sc == float_preds[i] {
                agree_aqfp += 1;
            }
        }
        // The SC pipeline is stochastic; most predictions must survive.
        assert!(
            agree_aqfp * 10 >= data.len() * 5,
            "only {agree_aqfp}/{} agree",
            data.len()
        );
    }

    #[test]
    fn cmos_path_runs_and_produces_classes() {
        let (spec, mut model) = trained_tiny();
        let compiled = CompiledNetwork::from_model(&spec, &mut model, 8);
        let img = Tensor::zeros(vec![1, 8, 8]);
        let c = compiled.classify_cmos(&img, 256, 3);
        assert!(c < 10);
    }

    #[test]
    fn scores_have_one_entry_per_class() {
        let (spec, mut model) = trained_tiny();
        let compiled = CompiledNetwork::from_model(&spec, &mut model, 8);
        let img = Tensor::zeros(vec![1, 8, 8]);
        assert_eq!(compiled.scores_aqfp(&img, 256, 3).len(), 10);
    }
}
