//! Quantised SC compilation and the bit-level inference engines.

use aqfp_sc_bitstream::{Bipolar, BitStream, ColumnCounter, Sng, SplitMix64, ThermalRng};
use aqfp_sc_core::baseline::{self, btanh_states};
use aqfp_sc_core::{AveragePooling, FeatureExtraction, MajorityChain};
use aqfp_sc_nn::{Padding, Sequential, Tensor};

use crate::arch::{LayerSpec, NetworkSpec};

/// One compiled (quantised) layer.
#[derive(Debug, Clone)]
pub enum CompiledLayer {
    /// Convolution with weights/biases quantised to comparator levels.
    Conv {
        /// Kernel side.
        k: usize,
        /// Input channels.
        in_c: usize,
        /// Output channels.
        out_c: usize,
        /// Padding mode.
        padding: Padding,
        /// Comparator level of every weight, `[out_c][in_c·k·k]` row-major.
        w_levels: Vec<u64>,
        /// Comparator level of every bias.
        b_levels: Vec<u64>,
    },
    /// Average pooling window.
    Pool {
        /// Window side.
        k: usize,
    },
    /// Fully-connected feature-extraction layer.
    Dense {
        /// Input features.
        in_f: usize,
        /// Output features.
        out_f: usize,
        /// Comparator level of every weight, `[out_f][in_f]` row-major.
        w_levels: Vec<u64>,
        /// Comparator level of every bias.
        b_levels: Vec<u64>,
    },
    /// The categorization layer.
    Output {
        /// Input features.
        in_f: usize,
        /// Class count.
        classes: usize,
        /// Comparator level of every weight, `[classes][in_f]` row-major.
        w_levels: Vec<u64>,
        /// Comparator level of every bias.
        b_levels: Vec<u64>,
    },
}

/// A trained network quantised onto the SC hardware grid, runnable on both
/// the AQFP (sorter/majority-chain) and CMOS (APC/Btanh/mux) paths.
#[derive(Debug, Clone)]
pub struct CompiledNetwork {
    spec: NetworkSpec,
    layers: Vec<CompiledLayer>,
    bits: u32,
}

/// Which hardware executes the stochastic pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Platform {
    Aqfp,
    Cmos,
}

impl CompiledNetwork {
    /// Quantises the trainable layers of `model` (built by
    /// [`crate::build_model`] from the same `spec`) to `bits`-bit
    /// comparator levels.
    ///
    /// # Panics
    ///
    /// Panics when the model does not structurally match the spec.
    pub fn from_model(spec: &NetworkSpec, model: &mut Sequential, bits: u32) -> Self {
        let shapes = spec.shapes();
        let mut trainable: Vec<Vec<f32>> = model
            .layers()
            .iter()
            .filter(|l| matches!(l.name(), "conv2d" | "dense"))
            .map(|l| l.params())
            .collect();
        trainable.reverse(); // pop from the front via pop()
        let quant = |v: f32| aqfp_sc_nn::quantize_bipolar(v as f64, bits).1;
        let mut layers = Vec::new();
        for (i, layer) in spec.layers.iter().enumerate() {
            let (in_c, _, _) = shapes[i];
            match layer {
                LayerSpec::Conv { k, out_c, padding } => {
                    let params = trainable.pop().expect("model is missing a conv layer");
                    let wn = out_c * in_c * k * k;
                    assert_eq!(params.len(), wn + out_c, "conv parameter mismatch");
                    layers.push(CompiledLayer::Conv {
                        k: *k,
                        in_c,
                        out_c: *out_c,
                        padding: *padding,
                        w_levels: params[..wn].iter().map(|&v| quant(v)).collect(),
                        b_levels: params[wn..].iter().map(|&v| quant(v)).collect(),
                    });
                }
                LayerSpec::AvgPool { k } => layers.push(CompiledLayer::Pool { k: *k }),
                LayerSpec::Dense { out } => {
                    let params = trainable.pop().expect("model is missing a dense layer");
                    let in_f = shapes[i].0 * shapes[i].1 * shapes[i].2;
                    let wn = in_f * out;
                    assert_eq!(params.len(), wn + out, "dense parameter mismatch");
                    layers.push(CompiledLayer::Dense {
                        in_f,
                        out_f: *out,
                        w_levels: params[..wn].iter().map(|&v| quant(v)).collect(),
                        b_levels: params[wn..].iter().map(|&v| quant(v)).collect(),
                    });
                }
                LayerSpec::Output { classes } => {
                    let params = trainable.pop().expect("model is missing the output layer");
                    let in_f = shapes[i].0 * shapes[i].1 * shapes[i].2;
                    let wn = in_f * classes;
                    assert_eq!(params.len(), wn + classes, "output parameter mismatch");
                    layers.push(CompiledLayer::Output {
                        in_f,
                        classes: *classes,
                        w_levels: params[..wn].iter().map(|&v| quant(v)).collect(),
                        b_levels: params[wn..].iter().map(|&v| quant(v)).collect(),
                    });
                }
            }
        }
        assert!(trainable.is_empty(), "model has extra trainable layers");
        CompiledNetwork { spec: spec.clone(), layers, bits }
    }

    /// The network spec this was compiled from.
    pub fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    /// Comparator resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Classifies an image on the AQFP path (sorter-based feature
    /// extraction, sorter pooling, majority-chain categorization, true-RNG
    /// number generators).
    pub fn classify_aqfp(&self, image: &Tensor, stream_len: usize, seed: u64) -> usize {
        argmax(&self.scores(image, stream_len, seed, Platform::Aqfp))
    }

    /// Classifies an image on the CMOS SC baseline path (APC + Btanh
    /// counters, mux pooling, pseudo-random number generators).
    pub fn classify_cmos(&self, image: &Tensor, stream_len: usize, seed: u64) -> usize {
        argmax(&self.scores(image, stream_len, seed, Platform::Cmos))
    }

    /// Raw AQFP-path class scores (bipolar values of the majority-chain
    /// outputs).
    pub fn scores_aqfp(&self, image: &Tensor, stream_len: usize, seed: u64) -> Vec<f64> {
        self.scores(image, stream_len, seed, Platform::Aqfp)
    }

    /// Accuracy over a labelled set on the chosen path (`cmos = false` for
    /// AQFP).
    pub fn evaluate(
        &self,
        samples: &[(Tensor, usize)],
        stream_len: usize,
        seed: u64,
        cmos: bool,
    ) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let correct = samples
            .iter()
            .enumerate()
            .filter(|(i, (x, y))| {
                let s = seed ^ ((*i as u64) << 32);
                let got = if cmos {
                    self.classify_cmos(x, stream_len, s)
                } else {
                    self.classify_aqfp(x, stream_len, s)
                };
                got == *y
            })
            .count();
        correct as f64 / samples.len() as f64
    }

    fn scores(&self, image: &Tensor, len: usize, seed: u64, platform: Platform) -> Vec<f64> {
        assert_eq!(
            image.shape(),
            &[1, self.spec.input_side, self.spec.input_side],
            "image shape mismatch"
        );
        let mut gen = StreamGen::new(self.bits, seed, platform);
        // Encode the input image: pixel p ∈ [0,1] is the bipolar value p.
        let mut streams: Vec<BitStream> = image
            .data()
            .iter()
            .map(|&p| gen.stream(Bipolar::clamped(p as f64), len))
            .collect();
        let shapes = self.spec.shapes();
        let neutral = BitStream::alternating(len);
        let mut scores = Vec::new();
        for (i, layer) in self.layers.iter().enumerate() {
            let (in_c, h, w) = shapes[i];
            match layer {
                CompiledLayer::Conv { k, out_c, padding, w_levels, b_levels, .. } => {
                    let (oh, ow) = match padding {
                        Padding::Valid => (h - k + 1, w - k + 1),
                        Padding::Same => (h, w),
                    };
                    let pad = match padding {
                        Padding::Valid => 0isize,
                        Padding::Same => (k / 2) as isize,
                    };
                    let m = in_c * k * k;
                    let mut out = Vec::with_capacity(out_c * oh * ow);
                    for oc in 0..*out_c {
                        let wrow = &w_levels[oc * m..(oc + 1) * m];
                        let wstreams: Vec<BitStream> =
                            wrow.iter().map(|&l| gen.stream_level(l, len)).collect();
                        let bstream = gen.stream_level(b_levels[oc], len);
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let mut counter = ColumnCounter::new(len);
                                let mut j = 0usize;
                                for ic in 0..in_c {
                                    for ky in 0..*k {
                                        for kx in 0..*k {
                                            let iy = oy as isize + ky as isize - pad;
                                            let ix = ox as isize + kx as isize - pad;
                                            let x = if iy < 0
                                                || ix < 0
                                                || iy >= h as isize
                                                || ix >= w as isize
                                            {
                                                &neutral // zero-valued padding row
                                            } else {
                                                &streams[(ic * h + iy as usize) * w
                                                    + ix as usize]
                                            };
                                            add_product(&mut counter, x, &wstreams[j]);
                                            j += 1;
                                        }
                                    }
                                }
                                counter.add(&bstream).expect("lengths match");
                                out.push(neuron_output(&counter, m + 1, len, platform, &neutral));
                            }
                        }
                    }
                    streams = out;
                }
                CompiledLayer::Pool { k } => {
                    let (oh, ow) = (h / k, w / k);
                    let mut out = Vec::with_capacity(in_c * oh * ow);
                    for c in 0..in_c {
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let window: Vec<BitStream> = (0..*k)
                                    .flat_map(|ky| {
                                        (0..*k).map(move |kx| (ky, kx))
                                    })
                                    .map(|(ky, kx)| {
                                        streams[(c * h + oy * k + ky) * w + ox * k + kx]
                                            .clone()
                                    })
                                    .collect();
                                out.push(pool_output(&window, platform, seed ^ (c as u64) << 40));
                            }
                        }
                    }
                    streams = out;
                }
                CompiledLayer::Dense { in_f, out_f, w_levels, b_levels } => {
                    let mut out = Vec::with_capacity(*out_f);
                    for o in 0..*out_f {
                        let wrow = &w_levels[o * in_f..(o + 1) * in_f];
                        let mut counter = ColumnCounter::new(len);
                        for (x, &l) in streams.iter().zip(wrow) {
                            let ws = gen.stream_level(l, len);
                            add_product(&mut counter, x, &ws);
                        }
                        let bstream = gen.stream_level(b_levels[o], len);
                        counter.add(&bstream).expect("lengths match");
                        out.push(neuron_output(&counter, in_f + 1, len, platform, &neutral));
                    }
                    streams = out;
                }
                CompiledLayer::Output { in_f, classes, w_levels, b_levels } => {
                    for cl in 0..*classes {
                        let wrow = &w_levels[cl * in_f..(cl + 1) * in_f];
                        match platform {
                            Platform::Aqfp => {
                                // Majority chain over the product column.
                                // A chain link's influence decays ~2x per
                                // later link, so the wiring order matters:
                                // products of high-magnitude weights are
                                // placed at the END of the chain where
                                // their influence is largest. (Pure wiring
                                // choice — free in hardware; see DESIGN.md.)
                                let mid = 1u64 << (self.bits - 1);
                                let mut order: Vec<usize> = (0..*in_f).collect();
                                order.sort_by_key(|&j| wrow[j].abs_diff(mid));
                                let mut products: Vec<BitStream> = order
                                    .iter()
                                    .map(|&j| {
                                        let ws = gen.stream_level(wrow[j], len);
                                        streams[j].xnor(&ws).expect("lengths match")
                                    })
                                    .collect();
                                products.push(gen.stream_level(b_levels[cl], len));
                                let chain = MajorityChain::new(products.len());
                                let so = chain.run(&products).expect("well-formed");
                                scores.push(so.bipolar_value().get());
                            }
                            Platform::Cmos => {
                                // APC accumulation: the class score is the
                                // total product-ones count.
                                let mut counter = ColumnCounter::new(len);
                                for (x, &l) in streams.iter().zip(wrow) {
                                    let ws = gen.stream_level(l, len);
                                    add_product(&mut counter, x, &ws);
                                }
                                let bstream = gen.stream_level(b_levels[cl], len);
                                counter.add(&bstream).expect("lengths match");
                                let total: u64 =
                                    counter.counts().iter().map(|&c| c as u64).sum();
                                scores.push(total as f64 / len as f64);
                            }
                        }
                    }
                }
            }
        }
        scores
    }
}

/// XNOR-product accumulation into a column counter without materialising
/// the product stream.
fn add_product(counter: &mut ColumnCounter, x: &BitStream, w: &BitStream) {
    debug_assert_eq!(x.len(), w.len());
    let words: Vec<u64> = x
        .words()
        .iter()
        .zip(w.words())
        .map(|(&a, &b)| !(a ^ b))
        .collect();
    counter.add_words(&words);
}

/// Runs the platform-specific neuron (summation + activation) on the
/// accumulated column counts. `rows` is the number of product rows already
/// added (inputs + bias); a neutral row is appended when the sorter width
/// requires it.
fn neuron_output(
    counter: &ColumnCounter,
    rows: usize,
    len: usize,
    platform: Platform,
    neutral: &BitStream,
) -> BitStream {
    let out = match platform {
        Platform::Aqfp => {
            let fe = FeatureExtraction::new(rows);
            if fe.width() != rows {
                let mut padded = counter.clone();
                padded.add(neutral).expect("lengths match");
                fe.run_counts(&padded.counts())
            } else {
                fe.run_counts(&counter.counts())
            }
        }
        Platform::Cmos => {
            let states = btanh_states(rows);
            let max = states as i64 - 1;
            let mut state = max / 2;
            let m = rows as i64;
            BitStream::from_bits(counter.counts().into_iter().map(|c| {
                state = (state + 2 * c as i64 - m).clamp(0, max);
                state > max / 2
            }))
        }
    };
    debug_assert_eq!(out.len(), len);
    out
}

fn pool_output(window: &[BitStream], platform: Platform, seed: u64) -> BitStream {
    match platform {
        Platform::Aqfp => AveragePooling::new(window.len())
            .run(window)
            .expect("well-formed window"),
        Platform::Cmos => baseline::mux_average_pooling(window, seed).expect("well-formed window"),
    }
}

fn argmax(scores: &[f64]) -> usize {
    let mut best = 0;
    for (i, &s) in scores.iter().enumerate() {
        if s > scores[best] {
            best = i;
        }
    }
    best
}

/// Platform-specific stochastic number generation.
struct StreamGen {
    bits: u32,
    aqfp: Option<Sng<aqfp_sc_bitstream::BitsAsWords<ThermalRng>>>,
    cmos: Option<Sng<aqfp_sc_bitstream::BitsAsWords<SplitMix64>>>,
}

impl StreamGen {
    fn new(bits: u32, seed: u64, platform: Platform) -> Self {
        match platform {
            Platform::Aqfp => StreamGen {
                bits,
                aqfp: Some(Sng::new(bits, ThermalRng::with_seed(seed))),
                cmos: None,
            },
            // The CMOS baseline uses pseudo-random generators; a whitened
            // SplitMix stream models a well-scrambled LFSR bank (a raw
            // shared-polynomial LFSR bank would add cross-correlation the
            // baseline papers explicitly design away).
            Platform::Cmos => StreamGen {
                bits,
                cmos: Some(Sng::new(bits, SplitMix64::new(seed))),
                aqfp: None,
            },
        }
    }

    fn stream(&mut self, value: Bipolar, len: usize) -> BitStream {
        let scale = (1u64 << self.bits) as f64;
        let level = (value.probability() * scale).round().min(scale) as u64;
        self.stream_level(level, len)
    }

    fn stream_level(&mut self, level: u64, len: usize) -> BitStream {
        if let Some(sng) = &mut self.aqfp {
            sng.generate_level(level, len)
        } else {
            self.cmos
                .as_mut()
                .expect("one platform is always set")
                .generate_level(level, len)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{build_model, ActivationStyle};
    use aqfp_sc_data::synthetic_digits;

    fn trained_tiny() -> (NetworkSpec, Sequential) {
        let spec = NetworkSpec::tiny(8);
        let mut model = build_model(&spec, ActivationStyle::AqfpFeature, 5);
        // Train on downscaled synthetic digits (8x8 crops of the 28x28).
        let data: Vec<(Tensor, usize)> = synthetic_digits(240, 9)
            .into_iter()
            .map(|(img, label)| {
                let mut small = Tensor::zeros(vec![1, 8, 8]);
                for y in 0..8 {
                    for x in 0..8 {
                        // 28->8 by sampling every 3rd pixel around centre.
                        small.data_mut()[y * 8 + x] = img.at3(0, 2 + y * 3, 2 + x * 3);
                    }
                }
                (small, label)
            })
            .collect();
        for _ in 0..12 {
            model.train_epoch(&data, 0.05, 0.9, 16);
        }
        (spec, model)
    }

    #[test]
    fn compile_produces_levels_within_range() {
        let (spec, mut model) = trained_tiny();
        let compiled = CompiledNetwork::from_model(&spec, &mut model, 8);
        for layer in &compiled.layers {
            let levels: &[u64] = match layer {
                CompiledLayer::Conv { w_levels, .. } => w_levels,
                CompiledLayer::Dense { w_levels, .. } => w_levels,
                CompiledLayer::Output { w_levels, .. } => w_levels,
                CompiledLayer::Pool { .. } => continue,
            };
            assert!(levels.iter().all(|&l| l <= 256));
        }
    }

    #[test]
    fn sc_paths_agree_with_float_on_most_samples() {
        let (spec, mut model) = trained_tiny();
        let data: Vec<(Tensor, usize)> = synthetic_digits(40, 77)
            .into_iter()
            .map(|(img, label)| {
                let mut small = Tensor::zeros(vec![1, 8, 8]);
                for y in 0..8 {
                    for x in 0..8 {
                        small.data_mut()[y * 8 + x] = img.at3(0, 2 + y * 3, 2 + x * 3);
                    }
                }
                (small, label)
            })
            .collect();
        let float_preds: Vec<usize> = data.iter().map(|(x, _)| model.predict(x)).collect();
        let compiled = CompiledNetwork::from_model(&spec, &mut model, 8);
        let mut agree_aqfp = 0usize;
        for (i, (x, _)) in data.iter().enumerate() {
            let sc = compiled.classify_aqfp(x, 1024, 1000 + i as u64);
            if sc == float_preds[i] {
                agree_aqfp += 1;
            }
        }
        // The SC pipeline is stochastic; most predictions must survive.
        assert!(
            agree_aqfp * 10 >= data.len() * 5,
            "only {agree_aqfp}/{} agree",
            data.len()
        );
    }

    #[test]
    fn cmos_path_runs_and_produces_classes() {
        let (spec, mut model) = trained_tiny();
        let compiled = CompiledNetwork::from_model(&spec, &mut model, 8);
        let img = Tensor::zeros(vec![1, 8, 8]);
        let c = compiled.classify_cmos(&img, 256, 3);
        assert!(c < 10);
    }

    #[test]
    fn scores_have_one_entry_per_class() {
        let (spec, mut model) = trained_tiny();
        let compiled = CompiledNetwork::from_model(&spec, &mut model, 8);
        let img = Tensor::zeros(vec![1, 8, 8]);
        assert_eq!(compiled.scores_aqfp(&img, 256, 3).len(), 10);
    }
}
