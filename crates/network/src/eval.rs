//! The Table 9 pipeline: train, quantise, run both SC paths, cost out.

use std::path::PathBuf;

use aqfp_sc_circuit::{AqfpTech, CmosTech};
use aqfp_sc_data::synthetic_digits;
use aqfp_sc_nn::{Sequential, Tensor};

use crate::arch::{build_model, ActivationStyle, NetworkSpec};
use crate::compile::CompiledNetwork;
use crate::cost::network_cost;
use crate::engine::InferenceEngine;
use crate::plan::Platform;

/// Configuration of a Table 9 run.
#[derive(Debug, Clone)]
pub struct Table9Config {
    /// Training images (synthetic digits).
    pub train: usize,
    /// Float-accuracy test images.
    pub test: usize,
    /// Stochastic-inference test images (bit-level simulation is costly).
    pub sc_test: usize,
    /// Stochastic stream length N.
    pub stream_len: usize,
    /// Training epochs.
    pub epochs: usize,
    /// SNG comparator bits.
    pub bits: u32,
    /// Master seed.
    pub seed: u64,
    /// Directory for caching trained models (skips retraining on reruns).
    pub model_dir: Option<PathBuf>,
    /// Include the deeper DNN (slower) in addition to the SNN.
    pub include_dnn: bool,
}

impl Default for Table9Config {
    fn default() -> Self {
        Table9Config {
            train: 4000,
            test: 1000,
            sc_test: 60,
            stream_len: 1024,
            epochs: 4,
            bits: 8,
            seed: 20190622, // ISCA'19 presentation date
            model_dir: None,
            include_dnn: true,
        }
    }
}

/// One row of Table 9.
#[derive(Debug, Clone, PartialEq)]
pub struct Table9Row {
    /// Network name ("SNN" / "DNN").
    pub network: &'static str,
    /// Platform ("Software" / "CMOS" / "AQFP").
    pub platform: &'static str,
    /// Classification accuracy (fraction).
    pub accuracy: f64,
    /// Energy per image, microjoules (None for software).
    pub energy_uj: Option<f64>,
    /// Throughput, images per millisecond (None for software).
    pub throughput_img_per_ms: Option<f64>,
}

/// Runs the full Table 9 pipeline and returns its rows.
///
/// Per network, two float models are trained — one with the AQFP
/// feature-extraction response as activation (hardware-aware training for
/// the AQFP row), one with the CMOS baseline's tanh — then quantised and
/// evaluated bit-level on their own platform. The "Software" row is the
/// float evaluation of the tanh-trained model — the framework's closest
/// stand-in for the paper's software CNN baseline (no third,
/// standard-activation model is trained; tanh is both a common software
/// activation and the CMOS Btanh shape).
pub fn run_table9(config: &Table9Config) -> Vec<Table9Row> {
    let train = synthetic_digits(config.train, config.seed);
    let test = synthetic_digits(config.test, config.seed ^ 0xDEAD_BEEF);
    let sc_test: Vec<(Tensor, usize)> = test.iter().take(config.sc_test).cloned().collect();
    let mut rows = Vec::new();
    let mut specs = vec![NetworkSpec::snn()];
    if config.include_dnn {
        specs.push(NetworkSpec::dnn());
    }
    for spec in &specs {
        let mut aqfp_model =
            trained_model(spec, ActivationStyle::AqfpFeature, config, &train, "aqfp");
        let mut cmos_model =
            trained_model(spec, ActivationStyle::CmosTanh, config, &train, "cmos");
        let sw_acc = cmos_model.evaluate(&test);
        rows.push(Table9Row {
            network: spec.name,
            platform: "Software",
            accuracy: sw_acc,
            energy_uj: None,
            throughput_img_per_ms: None,
        });
        let cost = network_cost(
            spec,
            config.stream_len as u64,
            config.bits,
            &AqfpTech::default(),
            &CmosTech::default(),
            4.0,
        );
        // The stochastic rows run through the batched engine: weight
        // streams are generated once per compiled network and the test
        // images fan out over the worker pool.
        let cmos_compiled = CompiledNetwork::from_model(spec, &mut cmos_model, config.bits);
        let cmos_engine =
            InferenceEngine::new(&cmos_compiled, config.stream_len, Platform::Cmos);
        // An empty SC test set (sc_test = 0) has no accuracy; NaN keeps the
        // row honest instead of reporting a fake 0 %.
        let cmos_acc = cmos_engine.evaluate(&sc_test, config.seed).unwrap_or(f64::NAN);
        rows.push(Table9Row {
            network: spec.name,
            platform: "CMOS",
            accuracy: cmos_acc,
            energy_uj: Some(cost.cmos.energy_uj()),
            throughput_img_per_ms: Some(cost.cmos.throughput_img_per_ms),
        });
        let aqfp_compiled = CompiledNetwork::from_model(spec, &mut aqfp_model, config.bits);
        let aqfp_engine =
            InferenceEngine::new(&aqfp_compiled, config.stream_len, Platform::Aqfp);
        let aqfp_acc = aqfp_engine.evaluate(&sc_test, config.seed).unwrap_or(f64::NAN);
        rows.push(Table9Row {
            network: spec.name,
            platform: "AQFP",
            accuracy: aqfp_acc,
            energy_uj: Some(cost.aqfp.energy_uj()),
            throughput_img_per_ms: Some(cost.aqfp.throughput_img_per_ms),
        });
    }
    rows
}

fn trained_model(
    spec: &NetworkSpec,
    style: ActivationStyle,
    config: &Table9Config,
    train: &[(Tensor, usize)],
    tag: &str,
) -> Sequential {
    let mut model = build_model(spec, style, config.seed);
    if let Some(dir) = &config.model_dir {
        let path = dir.join(format!(
            "{}-{}-{}-{}.bin",
            spec.name, tag, config.train, config.epochs
        ));
        if path.exists() && model.load_params(&path).is_ok() {
            return model;
        }
        train_loop(&mut model, train, config);
        std::fs::create_dir_all(dir).ok();
        model.save_params(&path).ok();
        return model;
    }
    train_loop(&mut model, train, config);
    model
}

fn train_loop(model: &mut Sequential, train: &[(Tensor, usize)], config: &Table9Config) {
    let mut lr = 0.05f32;
    for _ in 0..config.epochs {
        model.train_epoch(train, lr, 0.9, 16);
        lr *= 0.7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_snn_table9_has_sane_rows() {
        // A deliberately tiny run: checks plumbing, not accuracy targets.
        let config = Table9Config {
            train: 300,
            test: 100,
            sc_test: 4,
            stream_len: 256,
            epochs: 1,
            bits: 8,
            seed: 7,
            model_dir: None,
            include_dnn: false,
        };
        let rows = run_table9(&config);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].platform, "Software");
        assert!(rows[0].accuracy > 0.15, "software acc {}", rows[0].accuracy);
        let aqfp = &rows[2];
        let cmos = &rows[1];
        assert!(aqfp.energy_uj.unwrap() < cmos.energy_uj.unwrap());
        assert!(aqfp.throughput_img_per_ms.unwrap() > cmos.throughput_img_per_ms.unwrap());
    }
}
