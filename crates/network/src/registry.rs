//! A multi-model registry: many named, ready-to-run [`ExecPlan`]s behind
//! atomically hot-swappable handles.
//!
//! A serving process compiles (or [loads](CompiledNetwork::load)) each model
//! once, registers the resulting plan under a name, and hands out
//! `Arc<ExecPlan>` clones to request handlers. Replacing a model is one
//! [`ModelRegistry::insert`]: the map entry swaps under a short write lock,
//! new lookups see the new plan immediately, and in-flight work keeps the
//! old plan alive through its own `Arc` until it finishes — no rebuild, no
//! pause, no torn state. The [`PlanFingerprint`] bind-guard makes the swap
//! safe even against misuse: an [`ExecState`](crate::ExecState) begun under
//! the old plan refuses to be advanced by the new one.

use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::artifact::ArtifactError;
use crate::compile::CompiledNetwork;
use crate::engine::InferenceEngine;
use crate::plan::{ExecPlan, PlanFingerprint, Platform};

/// Why a registry lookup failed — typed so a serving front-end can turn it
/// into a structured error response (and tell a client asking for a
/// misspelled model apart from one talking to a process that has loaded
/// nothing at all).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The registry has no models at all — lookups cannot succeed until
    /// something is [`insert`](ModelRegistry::insert)ed or
    /// [`load`](ModelRegistry::load)ed.
    Empty,
    /// No model is registered under the requested name.
    UnknownModel {
        /// The name that was looked up.
        name: String,
        /// The names that *are* registered (sorted), for actionable error
        /// messages.
        registered: Vec<String>,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Empty => write!(f, "model registry is empty"),
            RegistryError::UnknownModel { name, registered } => {
                write!(f, "unknown model `{name}` (registered: {})", registered.join(", "))
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// Thread-safe collection of named execution plans.
///
/// # Example
///
/// ```
/// use aqfp_sc_network::{build_model, ActivationStyle, CompiledNetwork};
/// use aqfp_sc_network::{ModelRegistry, NetworkSpec, Platform};
/// use aqfp_sc_nn::Tensor;
///
/// let spec = NetworkSpec::tiny(8);
/// let mut model = build_model(&spec, ActivationStyle::AqfpFeature, 1);
/// let compiled = CompiledNetwork::from_model(&spec, &mut model, 8);
///
/// let registry = ModelRegistry::new();
/// registry.install("digits", &compiled, 128, Platform::Aqfp);
/// let engine = registry.engine("digits").expect("registered");
/// assert!(engine.classify(&Tensor::zeros(vec![1, 8, 8]), 42) < 10);
///
/// // Hot-swap: a different weight-stream seed is a different model.
/// let twin = compiled.clone().with_stream_seed(99);
/// let old = registry.install("digits", &twin, 128, Platform::Aqfp);
/// assert!(old.is_some()); // previous plan handed back, engines on it live on
/// ```
#[derive(Default)]
pub struct ModelRegistry {
    models: RwLock<HashMap<String, Arc<ExecPlan>>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `plan` under `name`, atomically replacing (and returning)
    /// any previous plan of that name. Engines holding the old `Arc` are
    /// unaffected — the swap only redirects future lookups.
    pub fn insert(&self, name: impl Into<String>, plan: Arc<ExecPlan>) -> Option<Arc<ExecPlan>> {
        self.write().insert(name.into(), plan)
    }

    /// Compiles `net` into a fresh plan (paying weight-stream generation
    /// once) and registers it, returning any replaced plan.
    pub fn install(
        &self,
        name: impl Into<String>,
        net: &CompiledNetwork,
        stream_len: usize,
        platform: Platform,
    ) -> Option<Arc<ExecPlan>> {
        self.insert(name, Arc::new(ExecPlan::new(net, stream_len, platform)))
    }

    /// Loads a model artifact from `path`, builds its plan, and registers
    /// it under `name`. Every decode failure is a typed
    /// [`ArtifactError`]; the registry is untouched on error.
    pub fn load(
        &self,
        name: impl Into<String>,
        path: impl AsRef<Path>,
        stream_len: usize,
        platform: Platform,
    ) -> Result<Arc<ExecPlan>, ArtifactError> {
        let net = CompiledNetwork::load(path)?;
        let plan = Arc::new(ExecPlan::from_arc(Arc::new(net), stream_len, platform));
        self.insert(name, Arc::clone(&plan));
        Ok(plan)
    }

    /// The plan registered under `name` (a cheap `Arc` clone), or a typed
    /// [`RegistryError`] saying *why* the lookup failed.
    pub fn get(&self, name: &str) -> Result<Arc<ExecPlan>, RegistryError> {
        let map = self.read();
        match map.get(name) {
            Some(plan) => Ok(Arc::clone(plan)),
            None if map.is_empty() => Err(RegistryError::Empty),
            None => {
                let mut registered: Vec<String> = map.keys().cloned().collect();
                registered.sort();
                Err(RegistryError::UnknownModel { name: name.to_string(), registered })
            }
        }
    }

    /// A batch engine over the plan registered under `name` (default
    /// worker count; construction pays nothing — the cached streams are
    /// shared with the registry's handle).
    pub fn engine(&self, name: &str) -> Result<InferenceEngine, RegistryError> {
        self.get(name).map(InferenceEngine::from_plan)
    }

    /// Removes and returns the plan registered under `name` (`None` when
    /// nothing was registered — removal of an absent name is a no-op, not
    /// an error).
    pub fn remove(&self, name: &str) -> Option<Arc<ExecPlan>> {
        self.write().remove(name)
    }

    /// Fingerprint of the plan registered under `name` (model content +
    /// platform + stream length) — what two processes compare to agree
    /// they serve the same model.
    pub fn fingerprint(&self, name: &str) -> Result<PlanFingerprint, RegistryError> {
        self.get(name).map(|p| p.fingerprint())
    }

    /// Registered names, sorted (a point-in-time snapshot).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// Whether no model is registered.
    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }

    /// Read access that survives lock poisoning: the map is only ever
    /// mutated by `HashMap::insert`/`remove`, which cannot leave it torn,
    /// so a panicking writer elsewhere must not wedge every later lookup.
    fn read(&self) -> RwLockReadGuard<'_, HashMap<String, Arc<ExecPlan>>> {
        self.models.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> RwLockWriteGuard<'_, HashMap<String, Arc<ExecPlan>>> {
        self.models.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{build_model, ActivationStyle, NetworkSpec};

    fn compiled() -> CompiledNetwork {
        let spec = NetworkSpec::tiny(8);
        let mut model = build_model(&spec, ActivationStyle::AqfpFeature, 7);
        CompiledNetwork::from_model(&spec, &mut model, 8)
    }

    #[test]
    fn registry_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelRegistry>();
        assert_send_sync::<Arc<ExecPlan>>();
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let net = compiled();
        let registry = ModelRegistry::new();
        assert!(registry.is_empty());
        // Lookups on an empty registry are a distinct typed error …
        assert_eq!(registry.get("a").err(), Some(RegistryError::Empty));
        assert_eq!(registry.engine("a").err().map(|e| e == RegistryError::Empty), Some(true));
        registry.install("a", &net, 64, Platform::Aqfp);
        registry.install("b", &net, 64, Platform::Cmos);
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.names(), vec!["a".to_string(), "b".to_string()]);
        // … and an unknown name on a populated one names the alternatives.
        assert_eq!(
            registry.get("z").err().expect("unknown name"),
            RegistryError::UnknownModel {
                name: "z".to_string(),
                registered: vec!["a".to_string(), "b".to_string()],
            }
        );
        let a = registry.get("a").expect("registered");
        assert_eq!(a.platform(), Platform::Aqfp);
        assert_eq!(
            registry.fingerprint("a").expect("registered").model,
            net.fingerprint()
        );
        assert!(registry.remove("a").is_some());
        assert!(registry.get("a").is_err());
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn hot_swap_returns_old_plan_and_redirects_lookups() {
        let net = compiled();
        let twin = net.clone().with_stream_seed(net.stream_seed() ^ 0xABCD);
        let registry = ModelRegistry::new();
        registry.install("m", &net, 64, Platform::Aqfp);
        let before = registry.get("m").expect("registered");
        let replaced = registry.install("m", &twin, 64, Platform::Aqfp).expect("was present");
        // The replaced handle is the original plan; lookups now see the twin.
        assert_eq!(replaced.fingerprint(), before.fingerprint());
        let after = registry.get("m").expect("registered");
        assert_ne!(after.fingerprint(), before.fingerprint());
        assert_eq!(after.fingerprint().model, twin.fingerprint());
        // The old plan still runs — in-flight holders are unaffected.
        let mut state = before.new_state();
        let scores =
            before.run_one_shot(&mut state, &aqfp_sc_nn::Tensor::zeros(vec![1, 8, 8]), 3);
        assert_eq!(scores.len(), 10);
    }
}
