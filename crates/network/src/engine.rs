//! The reusable stochastic inference engine: weight streams cached once,
//! images fanned out across a scoped worker pool.
//!
//! [`CompiledNetwork::scores`-style inference][crate::CompiledNetwork]
//! regenerated every weight/bias bit-stream from the SNG on every call —
//! per image, per neuron. Those streams depend only on the quantised
//! weights and the network's [stream seed](CompiledNetwork::stream_seed),
//! never on the image, so the [`InferenceEngine`] generates them exactly
//! once at construction and shares the cache (immutably) across every image
//! and every worker thread.
//!
//! # Seed discipline
//!
//! Two independent RNG domains keep batched results bit-identical to
//! serial ones:
//!
//! * **Weight domain** — every cached weight/bias stream draws from its own
//!   generator, seeded by mixing the network's `stream_seed` with the
//!   layer/row/column coordinates of the weight. Any engine built from the
//!   same compiled network caches byte-identical streams.
//! * **Image domain** — the per-call `image_seed` drives the input-pixel
//!   SNGs and the (CMOS) pooling selectors. Batch APIs derive one seed per
//!   image via [`InferenceEngine::image_seed`], so
//!   `classify_batch(&images, s)[i]` equals the serial
//!   `classify_aqfp(&images[i], len, InferenceEngine::image_seed(s, i))`
//!   bit for bit, regardless of worker count.

use aqfp_sc_bitstream::{Bipolar, BitStream, ColumnCounter, SplitMix64, Sng, ThermalRng};
use aqfp_sc_core::baseline::{self, Btanh};
use aqfp_sc_core::{AveragePooling, FeatureExtraction, MajorityChain};
use aqfp_sc_nn::{Padding, Tensor};

use crate::compile::{CompiledLayer, CompiledNetwork};

/// Which hardware executes the stochastic pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Platform {
    /// Sorter-based feature extraction and pooling, majority-chain
    /// categorization, true-RNG number generators.
    Aqfp,
    /// The CMOS SC baseline: APC + Btanh counters, mux pooling,
    /// pseudo-random number generators.
    Cmos,
}

/// Domain tags separating the independent RNG streams (arbitrary odd
/// constants; only inequality matters). `TAG_PIXEL` is mixed with the
/// pixel's raster index: every pixel owns its own SNG (the paper's
/// one-SNG-per-input wiring), which is also what lets the streaming engine
/// resume each pixel's stream across chunks without any chunk-domain tag.
pub(crate) const TAG_WEIGHT: u64 = 0x57E1_6877_0000_0001;
pub(crate) const TAG_BIAS: u64 = 0xB1A5_0000_0000_0003;
pub(crate) const TAG_PIXEL: u64 = 0x01AE_D1D0_0000_0005;
pub(crate) const TAG_POOL: u64 = 0x9001_0000_0000_0007;
pub(crate) const TAG_IMAGE: u64 = 0x1111_A6E5_0000_0009;

/// One compiled layer with its image-independent streams attached.
pub(crate) enum CachedLayer {
    Conv {
        k: usize,
        in_c: usize,
        out_c: usize,
        padding: Padding,
        /// `[out_c][in_c·k·k]` row-major weight streams.
        w: Vec<BitStream>,
        /// One bias stream per output channel.
        b: Vec<BitStream>,
    },
    Pool {
        k: usize,
    },
    Dense {
        in_f: usize,
        out_f: usize,
        w: Vec<BitStream>,
        b: Vec<BitStream>,
    },
    Output {
        in_f: usize,
        classes: usize,
        /// AQFP: per class, input indices in majority-chain wiring order
        /// (products of high-magnitude weights at the chain end).
        order: Vec<Vec<usize>>,
        /// `[classes][in_f]` row-major weight streams (natural order).
        w: Vec<BitStream>,
        b: Vec<BitStream>,
    },
}

/// Reusable, thread-safe stochastic inference engine over a
/// [`CompiledNetwork`].
///
/// Construction pays the full weight-stream generation cost once; every
/// subsequent image only generates its pixel streams and runs the
/// word-level column-count pipeline. [`scores_batch`] /
/// [`classify_batch`] split the batch across `threads` scoped workers.
///
/// [`scores_batch`]: InferenceEngine::scores_batch
/// [`classify_batch`]: InferenceEngine::classify_batch
///
/// # Example
///
/// ```
/// use aqfp_sc_network::{build_model, ActivationStyle, CompiledNetwork};
/// use aqfp_sc_network::{InferenceEngine, NetworkSpec, Platform};
/// use aqfp_sc_nn::Tensor;
///
/// let spec = NetworkSpec::tiny(8);
/// let mut model = build_model(&spec, ActivationStyle::AqfpFeature, 1);
/// let compiled = CompiledNetwork::from_model(&spec, &mut model, 8);
/// let engine = InferenceEngine::new(&compiled, 128, Platform::Aqfp);
/// let images = vec![Tensor::zeros(vec![1, 8, 8]); 3];
/// let classes = engine.classify_batch(&images, 42);
/// assert_eq!(classes.len(), 3);
/// // Bit-identical to the serial path:
/// let serial = compiled.classify_aqfp(&images[0], 128, InferenceEngine::image_seed(42, 0));
/// assert_eq!(classes[0], serial);
/// ```
pub struct InferenceEngine<'a> {
    pub(crate) net: &'a CompiledNetwork,
    platform: Platform,
    stream_len: usize,
    pub(crate) layers: Vec<CachedLayer>,
    pub(crate) shapes: Vec<(usize, usize, usize)>,
    pub(crate) neutral: BitStream,
    threads: usize,
    cached_streams: usize,
}

impl<'a> InferenceEngine<'a> {
    /// Builds an engine for `net` at stream length `stream_len` on
    /// `platform`, generating and caching every weight/bias stream.
    ///
    /// The worker count defaults to [`std::thread::available_parallelism`]
    /// (see [`InferenceEngine::with_threads`]).
    pub fn new(net: &'a CompiledNetwork, stream_len: usize, platform: Platform) -> Self {
        let bits = net.bits();
        let seed = net.stream_seed();
        let mut layers = Vec::with_capacity(net.layers().len());
        let mut cached_streams = 0usize;
        let gen_stream = |tag: u64, layer: u64, row: u64, col: u64, level: u64| {
            let key = derive(seed, [tag ^ layer, row, col]);
            generate_stream(platform, bits, key, level, stream_len)
        };
        for (li, layer) in net.layers().iter().enumerate() {
            let li64 = li as u64;
            match layer {
                CompiledLayer::Conv { k, in_c, out_c, padding, w_levels, b_levels } => {
                    let m = in_c * k * k;
                    let w: Vec<BitStream> = w_levels
                        .iter()
                        .enumerate()
                        .map(|(i, &l)| {
                            gen_stream(TAG_WEIGHT, li64, (i / m) as u64, (i % m) as u64, l)
                        })
                        .collect();
                    let b: Vec<BitStream> = b_levels
                        .iter()
                        .enumerate()
                        .map(|(i, &l)| gen_stream(TAG_BIAS, li64, i as u64, 0, l))
                        .collect();
                    cached_streams += w.len() + b.len();
                    layers.push(CachedLayer::Conv {
                        k: *k,
                        in_c: *in_c,
                        out_c: *out_c,
                        padding: *padding,
                        w,
                        b,
                    });
                }
                CompiledLayer::Pool { k } => layers.push(CachedLayer::Pool { k: *k }),
                CompiledLayer::Dense { in_f, out_f, w_levels, b_levels } => {
                    let w: Vec<BitStream> = w_levels
                        .iter()
                        .enumerate()
                        .map(|(i, &l)| {
                            gen_stream(TAG_WEIGHT, li64, (i / in_f) as u64, (i % in_f) as u64, l)
                        })
                        .collect();
                    let b: Vec<BitStream> = b_levels
                        .iter()
                        .enumerate()
                        .map(|(i, &l)| gen_stream(TAG_BIAS, li64, i as u64, 0, l))
                        .collect();
                    cached_streams += w.len() + b.len();
                    layers.push(CachedLayer::Dense { in_f: *in_f, out_f: *out_f, w, b });
                }
                CompiledLayer::Output { in_f, classes, w_levels, b_levels } => {
                    let w: Vec<BitStream> = w_levels
                        .iter()
                        .enumerate()
                        .map(|(i, &l)| {
                            gen_stream(TAG_WEIGHT, li64, (i / in_f) as u64, (i % in_f) as u64, l)
                        })
                        .collect();
                    let b: Vec<BitStream> = b_levels
                        .iter()
                        .enumerate()
                        .map(|(i, &l)| gen_stream(TAG_BIAS, li64, i as u64, 0, l))
                        .collect();
                    // Majority-chain wiring order: a chain link's influence
                    // decays ~2x per later link, so products of
                    // high-magnitude weights go to the END of the chain
                    // where their influence is largest. (Pure wiring choice
                    // — free in hardware.)
                    let mid = 1u64 << (bits - 1);
                    let order: Vec<Vec<usize>> = (0..*classes)
                        .map(|cl| {
                            let wrow = &w_levels[cl * in_f..(cl + 1) * in_f];
                            let mut idx: Vec<usize> = (0..*in_f).collect();
                            idx.sort_by_key(|&j| wrow[j].abs_diff(mid));
                            idx
                        })
                        .collect();
                    cached_streams += w.len() + b.len();
                    layers.push(CachedLayer::Output {
                        in_f: *in_f,
                        classes: *classes,
                        order,
                        w,
                        b,
                    });
                }
            }
        }
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        InferenceEngine {
            net,
            platform,
            stream_len,
            layers,
            shapes: net.spec().shapes(),
            neutral: BitStream::alternating(stream_len),
            threads,
            cached_streams,
        }
    }

    /// Overrides the worker-pool size used by the batch APIs (clamped to at
    /// least 1). The worker count never changes results, only wall-clock.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The platform this engine simulates.
    pub fn platform(&self) -> Platform {
        self.platform
    }

    /// Stochastic stream length N in cycles.
    pub fn stream_len(&self) -> usize {
        self.stream_len
    }

    /// Configured worker-pool size.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of weight/bias streams generated and cached at construction.
    pub fn cached_streams(&self) -> usize {
        self.cached_streams
    }

    /// The per-image seed the batch APIs derive for image `index` from a
    /// batch `base` seed. Feeding this to the serial single-image entry
    /// points reproduces the batch member bit for bit.
    pub fn image_seed(base: u64, index: usize) -> u64 {
        derive(base, [TAG_IMAGE, index as u64, 0])
    }

    /// Raw class scores of one image under `image_seed`.
    ///
    /// # Panics
    ///
    /// Panics when the image shape does not match the compiled spec.
    pub fn scores(&self, image: &Tensor, image_seed: u64) -> Vec<f64> {
        let mut scratch = Scratch::new(self.stream_len);
        self.scores_with_scratch(image, image_seed, &mut scratch)
    }

    /// Classifies one image under `image_seed` (argmax of [`scores`]).
    ///
    /// [`scores`]: InferenceEngine::scores
    pub fn classify(&self, image: &Tensor, image_seed: u64) -> usize {
        argmax(&self.scores(image, image_seed))
    }

    /// Raw class scores for a batch, fanned out over the worker pool.
    /// Image `i` uses `Self::image_seed(base_seed, i)`.
    pub fn scores_batch(&self, images: &[Tensor], base_seed: u64) -> Vec<Vec<f64>> {
        let refs: Vec<&Tensor> = images.iter().collect();
        self.run_batch(&refs, base_seed, |scores| scores)
    }

    /// Classifies a batch, fanned out over the worker pool. Image `i` uses
    /// `Self::image_seed(base_seed, i)`.
    pub fn classify_batch(&self, images: &[Tensor], base_seed: u64) -> Vec<usize> {
        let refs: Vec<&Tensor> = images.iter().collect();
        self.run_batch(&refs, base_seed, |scores| argmax(&scores))
    }

    /// Accuracy over a labelled set through the batch pipeline, or `None`
    /// for an empty sample set (an empty set has no accuracy — returning
    /// 0.0 would be indistinguishable from a model that got every sample
    /// wrong).
    pub fn evaluate(&self, samples: &[(Tensor, usize)], base_seed: u64) -> Option<f64> {
        if samples.is_empty() {
            return None;
        }
        let images: Vec<&Tensor> = samples.iter().map(|(x, _)| x).collect();
        let correct = self
            .run_batch(&images, base_seed, |scores| argmax(&scores))
            .iter()
            .zip(samples)
            .filter(|(got, (_, want))| *got == want)
            .count();
        Some(correct as f64 / samples.len() as f64)
    }

    /// Shared batch driver: contiguous chunks of the image list go to
    /// scoped workers, each reusing one scratch across its chunk. The
    /// static partition keeps the output ordering (and the per-image
    /// seeds) independent of scheduling.
    fn run_batch<T, F>(&self, images: &[&Tensor], base_seed: u64, finish: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Vec<f64>) -> T + Sync,
    {
        if images.is_empty() {
            return Vec::new();
        }
        let threads = self.threads.min(images.len());
        let chunk = images.len().div_ceil(threads);
        let mut out: Vec<Option<T>> = Vec::new();
        out.resize_with(images.len(), || None);
        std::thread::scope(|scope| {
            for (ci, (imgs, slots)) in
                images.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate()
            {
                let finish = &finish;
                scope.spawn(move || {
                    let mut scratch = Scratch::new(self.stream_len);
                    for (j, (img, slot)) in imgs.iter().zip(slots).enumerate() {
                        let seed = Self::image_seed(base_seed, ci * chunk + j);
                        *slot = Some(finish(self.scores_with_scratch(img, seed, &mut scratch)));
                    }
                });
            }
        });
        out.into_iter().map(|s| s.expect("every slot filled")).collect()
    }

    /// The full per-image pipeline, reusing `scratch` buffers across
    /// neurons (and across images within one worker).
    fn scores_with_scratch(
        &self,
        image: &Tensor,
        image_seed: u64,
        scratch: &mut Scratch,
    ) -> Vec<f64> {
        let side = self.net.spec().input_side;
        assert_eq!(image.shape(), &[1, side, side], "image shape mismatch");
        let len = self.stream_len;
        let bits = self.net.bits();
        // Encode the input image: pixel p ∈ [0,1] is the bipolar value p.
        // Every pixel owns its own SNG, keyed by its raster index — the
        // paper's one-SNG-per-input wiring, and the discipline that lets
        // the streaming engine hold a resumable cursor per pixel.
        let scale = (1u64 << bits) as f64;
        let mut streams: Vec<BitStream> = image
            .data()
            .iter()
            .enumerate()
            .map(|(p, &v)| {
                let key = derive(image_seed, [TAG_PIXEL, p as u64, 0]);
                generate_stream(self.platform, bits, key, pixel_level(v, scale), len)
            })
            .collect();
        let mut scores = Vec::new();
        for (li, layer) in self.layers.iter().enumerate() {
            let (layer_in_c, h, w_dim) = self.shapes[li];
            match layer {
                CachedLayer::Conv { k, in_c, out_c, padding, w, b } => {
                    let (oh, ow) = match padding {
                        Padding::Valid => (h - k + 1, w_dim - k + 1),
                        Padding::Same => (h, w_dim),
                    };
                    let pad = match padding {
                        Padding::Valid => 0isize,
                        Padding::Same => (k / 2) as isize,
                    };
                    let m = in_c * k * k;
                    debug_assert_eq!(*in_c, layer_in_c);
                    let mut out = Vec::with_capacity(out_c * oh * ow);
                    for oc in 0..*out_c {
                        let wrow = &w[oc * m..(oc + 1) * m];
                        for oy in 0..oh {
                            for ox in 0..ow {
                                scratch.counter.clear();
                                let mut j = 0usize;
                                for ic in 0..*in_c {
                                    for ky in 0..*k {
                                        for kx in 0..*k {
                                            let iy = oy as isize + ky as isize - pad;
                                            let ix = ox as isize + kx as isize - pad;
                                            let x = if iy < 0
                                                || ix < 0
                                                || iy >= h as isize
                                                || ix >= w_dim as isize
                                            {
                                                &self.neutral // zero-valued padding row
                                            } else {
                                                &streams[(ic * h + iy as usize) * w_dim
                                                    + ix as usize]
                                            };
                                            scratch
                                                .counter
                                                .add_xnor_words(x.words(), wrow[j].words());
                                            j += 1;
                                        }
                                    }
                                }
                                scratch.counter.add_words(b[oc].words());
                                out.push(self.neuron_output(m + 1, scratch));
                            }
                        }
                    }
                    streams = out;
                }
                CachedLayer::Pool { k } => {
                    let (oh, ow) = (h / k, w_dim / k);
                    let mut out = Vec::with_capacity(layer_in_c * oh * ow);
                    for c in 0..layer_in_c {
                        let select_seed = derive(image_seed, [TAG_POOL ^ li as u64, c as u64, 0]);
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let window = (0..k * k).map(|i| {
                                    &streams[(c * h + oy * k + i / k) * w_dim + ox * k + i % k]
                                });
                                out.push(self.pool_output(window, k * k, select_seed, scratch));
                            }
                        }
                    }
                    streams = out;
                }
                CachedLayer::Dense { in_f, out_f, w, b } => {
                    let mut out = Vec::with_capacity(*out_f);
                    for o in 0..*out_f {
                        let wrow = &w[o * in_f..(o + 1) * in_f];
                        scratch.counter.clear();
                        for (x, ws) in streams.iter().zip(wrow) {
                            scratch.counter.add_xnor_words(x.words(), ws.words());
                        }
                        scratch.counter.add_words(b[o].words());
                        out.push(self.neuron_output(in_f + 1, scratch));
                    }
                    streams = out;
                }
                CachedLayer::Output { in_f, classes, order, w, b } => {
                    for cl in 0..*classes {
                        let wrow = &w[cl * in_f..(cl + 1) * in_f];
                        match self.platform {
                            Platform::Aqfp => {
                                // Majority chain over the product column in
                                // the cached wiring order.
                                let mut products: Vec<BitStream> = order[cl]
                                    .iter()
                                    .map(|&j| {
                                        streams[j].xnor(&wrow[j]).expect("lengths match")
                                    })
                                    .collect();
                                products.push(b[cl].clone());
                                let chain = MajorityChain::new(products.len());
                                let so = chain.run(&products).expect("well-formed");
                                scores.push(so.bipolar_value().get());
                            }
                            Platform::Cmos => {
                                // APC accumulation: the class score is the
                                // total product-ones count.
                                scratch.counter.clear();
                                for (x, ws) in streams.iter().zip(wrow) {
                                    scratch.counter.add_xnor_words(x.words(), ws.words());
                                }
                                scratch.counter.add_words(b[cl].words());
                                scratch.counter.counts_into(&mut scratch.counts);
                                let total: u64 =
                                    scratch.counts.iter().map(|&c| c as u64).sum();
                                scores.push(total as f64 / len as f64);
                            }
                        }
                    }
                }
            }
        }
        scores
    }

    /// Runs the platform-specific neuron (summation + activation) on the
    /// column counts accumulated in `scratch.counter`. `rows` is the number
    /// of product rows already added (inputs + bias); the neutral padding
    /// row required by an even sorter width is folded into the counts
    /// directly instead of materialising a stream.
    fn neuron_output(&self, rows: usize, scratch: &mut Scratch) -> BitStream {
        scratch.counter.counts_into(&mut scratch.counts);
        match self.platform {
            Platform::Aqfp => {
                let fe = FeatureExtraction::new(rows);
                if fe.width() != rows {
                    for (cycle, c) in scratch.counts.iter_mut().enumerate() {
                        *c += fe.pad_count_at(cycle);
                    }
                }
                fe.run_counts(&scratch.counts)
            }
            Platform::Cmos => {
                let mut fsm = Btanh::new(rows);
                BitStream::from_bits(scratch.counts.iter().map(|&c| fsm.step(c)))
            }
        }
    }

    /// Pools one window: word-level counts + the conserving sorter
    /// recursion on AQFP, the mux tree on CMOS.
    fn pool_output<'w>(
        &self,
        window: impl Iterator<Item = &'w BitStream> + Clone,
        m: usize,
        select_seed: u64,
        scratch: &mut Scratch,
    ) -> BitStream {
        match self.platform {
            Platform::Aqfp => {
                scratch.counter.clear();
                for s in window {
                    scratch.counter.add_words(s.words());
                }
                scratch.counter.counts_into(&mut scratch.counts);
                AveragePooling::new(m).run_counts(&scratch.counts)
            }
            Platform::Cmos => {
                let cloned: Vec<BitStream> = window.cloned().collect();
                baseline::mux_average_pooling(&cloned, select_seed)
                    .expect("well-formed window")
            }
        }
    }
}

/// Per-worker scratch buffers: one column counter and one counts vector,
/// reused across every neuron of every image the worker processes.
pub(crate) struct Scratch {
    pub(crate) counter: ColumnCounter,
    pub(crate) counts: Vec<u32>,
}

impl Scratch {
    pub(crate) fn new(len: usize) -> Self {
        Scratch { counter: ColumnCounter::new(len), counts: Vec::with_capacity(len) }
    }
}

/// Index of the largest score (first on ties).
pub(crate) fn argmax(scores: &[f64]) -> usize {
    let mut best = 0;
    for (i, &s) in scores.iter().enumerate() {
        if s > scores[best] {
            best = i;
        }
    }
    best
}

/// Comparator level of a pixel value `p ∈ [0, 1]` read as the bipolar
/// value `p`: `round(Bipolar::clamped(p).probability() · 2^bits)`.
pub(crate) fn pixel_level(p: f32, scale: f64) -> u64 {
    let prob = Bipolar::clamped(f64::from(p)).probability();
    (prob * scale).round().min(scale) as u64
}

/// Seed-domain separation: three keyed SplitMix64 steps over `base`.
pub(crate) fn derive(base: u64, tags: [u64; 3]) -> u64 {
    let mut x = base;
    for t in tags {
        x = SplitMix64::new(x ^ t.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64();
    }
    x
}

/// One weight/bias stream from its own platform-specific generator.
fn generate_stream(
    platform: Platform,
    bits: u32,
    key: u64,
    level: u64,
    len: usize,
) -> BitStream {
    match platform {
        Platform::Aqfp => Sng::new(bits, ThermalRng::with_seed(key)).generate_level(level, len),
        // The CMOS baseline uses pseudo-random generators; a whitened
        // SplitMix stream models a well-scrambled LFSR bank (a raw
        // shared-polynomial LFSR bank would add cross-correlation the
        // baseline papers explicitly design away).
        Platform::Cmos => Sng::new(bits, SplitMix64::new(key)).generate_level(level, len),
    }
}
