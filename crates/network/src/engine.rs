//! The reusable batched inference front-end: one [`ExecPlan`] (cached
//! weight streams) shared immutably across a scoped worker pool, each
//! worker driving its image slice through the shared lane-group scheduler
//! ([`crate::scheduler`]) — up to 64 images per machine word, with
//! recycled [`ExecState`]s and a scalar fallback below the measured lane
//! break-even.
//!
//! The forward pass itself lives in [`crate::plan`] — this module only
//! owns the batching policy: static contiguous partitioning of the image
//! list across `threads` workers, with per-image seeds derived via
//! [`InferenceEngine::image_seed`] so results never depend on scheduling.

use std::sync::Arc;

use aqfp_sc_nn::Tensor;

use aqfp_sc_bitstream::WORD_BITS;

use crate::compile::CompiledNetwork;
use crate::plan::{argmax, derive, ExecPlan, Platform, TAG_IMAGE};
use crate::scheduler::{drive_lane_groups, lane_min, stripe_width, GroupStats, NoExit};
use crate::streaming::ChunkSchedule;

/// Reusable, thread-safe stochastic inference engine over a
/// [`CompiledNetwork`].
///
/// Construction pays the full weight-stream generation cost once (the
/// engine owns an [`ExecPlan`]); every subsequent image only generates its
/// pixel streams and runs the word-level column-count pipeline as a single
/// full-length chunk. [`scores_batch`] / [`classify_batch`] split the
/// batch across `threads` scoped workers.
///
/// [`scores_batch`]: InferenceEngine::scores_batch
/// [`classify_batch`]: InferenceEngine::classify_batch
///
/// # Example
///
/// ```
/// use aqfp_sc_network::{build_model, ActivationStyle, CompiledNetwork};
/// use aqfp_sc_network::{InferenceEngine, NetworkSpec, Platform};
/// use aqfp_sc_nn::Tensor;
///
/// let spec = NetworkSpec::tiny(8);
/// let mut model = build_model(&spec, ActivationStyle::AqfpFeature, 1);
/// let compiled = CompiledNetwork::from_model(&spec, &mut model, 8);
/// let engine = InferenceEngine::new(&compiled, 128, Platform::Aqfp);
/// let images = vec![Tensor::zeros(vec![1, 8, 8]); 3];
/// let classes = engine.classify_batch(&images, 42);
/// assert_eq!(classes.len(), 3);
/// // Bit-identical to the serial path:
/// let serial = compiled.classify_aqfp(&images[0], 128, InferenceEngine::image_seed(42, 0));
/// assert_eq!(classes[0], serial);
/// ```
pub struct InferenceEngine {
    plan: Arc<ExecPlan>,
    threads: usize,
}

impl InferenceEngine {
    /// Builds an engine for `net` at stream length `stream_len` on
    /// `platform`, generating and caching every weight/bias stream.
    ///
    /// The worker count defaults to [`std::thread::available_parallelism`]
    /// (see [`InferenceEngine::with_threads`]).
    pub fn new(net: &CompiledNetwork, stream_len: usize, platform: Platform) -> Self {
        Self::from_plan(Arc::new(ExecPlan::new(net, stream_len, platform)))
    }

    /// Wraps an already-built plan — e.g. one fetched from a
    /// [`ModelRegistry`](crate::ModelRegistry) — paying no weight-stream
    /// generation. The engine holds the plan alive; a registry hot-swap
    /// replaces the registry's handle without disturbing engines built
    /// from the previous one.
    pub fn from_plan(plan: Arc<ExecPlan>) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        InferenceEngine { plan, threads }
    }

    /// Overrides the worker-pool size used by the batch APIs (clamped to at
    /// least 1). The worker count never changes results, only wall-clock.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The execution plan this engine drives (shared, immutable).
    pub fn plan(&self) -> &ExecPlan {
        &self.plan
    }

    /// Shared handle to the plan (e.g. to register it or to build a
    /// second engine over the same cached streams).
    pub fn shared_plan(&self) -> Arc<ExecPlan> {
        Arc::clone(&self.plan)
    }

    /// The platform this engine simulates.
    pub fn platform(&self) -> Platform {
        self.plan.platform()
    }

    /// Stochastic stream length N in cycles.
    pub fn stream_len(&self) -> usize {
        self.plan.stream_len()
    }

    /// Configured worker-pool size.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of weight/bias streams generated and cached at construction.
    pub fn cached_streams(&self) -> usize {
        self.plan.cached_streams()
    }

    /// The per-image seed the batch APIs derive for image `index` from a
    /// batch `base` seed. Feeding this to the serial single-image entry
    /// points reproduces the batch member bit for bit.
    pub fn image_seed(base: u64, index: usize) -> u64 {
        derive(base, [TAG_IMAGE, index as u64, 0])
    }

    /// Raw class scores of one image under `image_seed`.
    ///
    /// # Panics
    ///
    /// Panics when the image shape does not match the compiled spec.
    pub fn scores(&self, image: &Tensor, image_seed: u64) -> Vec<f64> {
        let mut state = self.plan.new_state();
        self.plan.run_one_shot(&mut state, image, image_seed)
    }

    /// Classifies one image under `image_seed` (argmax of [`scores`]).
    ///
    /// [`scores`]: InferenceEngine::scores
    pub fn classify(&self, image: &Tensor, image_seed: u64) -> usize {
        argmax(&self.scores(image, image_seed))
    }

    /// Raw class scores for a batch, fanned out over the worker pool.
    /// Image `i` uses `Self::image_seed(base_seed, i)`.
    pub fn scores_batch(&self, images: &[Tensor], base_seed: u64) -> Vec<Vec<f64>> {
        let refs: Vec<&Tensor> = images.iter().collect();
        self.run_batch(&refs, base_seed, |scores| scores)
    }

    /// Classifies a batch, fanned out over the worker pool. Image `i` uses
    /// `Self::image_seed(base_seed, i)`.
    pub fn classify_batch(&self, images: &[Tensor], base_seed: u64) -> Vec<usize> {
        let refs: Vec<&Tensor> = images.iter().collect();
        self.run_batch(&refs, base_seed, |scores| argmax(&scores))
    }

    /// Accuracy over a labelled set through the batch pipeline, or `None`
    /// for an empty sample set (an empty set has no accuracy — returning
    /// 0.0 would be indistinguishable from a model that got every sample
    /// wrong).
    pub fn evaluate(&self, samples: &[(Tensor, usize)], base_seed: u64) -> Option<f64> {
        let images: Vec<&Tensor> = samples.iter().map(|(x, _)| x).collect();
        let classes = self.run_batch(&images, base_seed, |scores| argmax(&scores));
        accuracy(&classes, samples, |&c| c)
    }

    /// Shared batch driver: contiguous chunks of the image list go to
    /// scoped workers, and each worker runs its slice through the shared
    /// lane-group scheduler with a full-length schedule and no exit policy
    /// — every group of up to 64 images advances as one machine word
    /// through [`ExecPlan::advance_batch`]. Groups below
    /// [`lane_min`](crate::lane_min) lanes (short remainders, tiny
    /// batches) run the scalar core instead, which is bit-identical; the
    /// threshold is the measured per-platform break-even of the lane path. The static
    /// partition keeps the output ordering (and the per-image seeds)
    /// independent of scheduling.
    pub(crate) fn run_batch<T, F>(&self, images: &[&Tensor], base_seed: u64, finish: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Vec<f64>) -> T + Sync,
    {
        if images.is_empty() {
            return Vec::new();
        }
        let threads = self.threads.min(images.len());
        let chunk = images.len().div_ceil(threads);
        let mut out: Vec<Option<T>> = Vec::new();
        out.resize_with(images.len(), || None);
        let schedule = ChunkSchedule::fixed(self.plan.stream_len().max(1));
        std::thread::scope(|scope| {
            for (ci, (imgs, slots)) in
                images.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate()
            {
                let finish = &finish;
                scope.spawn(move || {
                    let seeds: Vec<u64> = (0..imgs.len())
                        .map(|j| Self::image_seed(base_seed, ci * chunk + j))
                        .collect();
                    let outcomes = drive_lane_groups(
                        &self.plan,
                        imgs,
                        &seeds,
                        schedule,
                        &NoExit,
                        WORD_BITS * stripe_width(self.plan.platform()),
                        lane_min(self.plan.platform()),
                        &mut GroupStats::default(),
                    );
                    for (slot, o) in slots.iter_mut().zip(outcomes) {
                        *slot = Some(finish(o.scores));
                    }
                });
            }
        });
        out.into_iter().map(|s| s.expect("every slot filled")).collect()
    }
}

/// Shared accuracy accumulation over per-sample outcomes: `None` for an
/// empty sample set (an empty set has no accuracy — 0.0 would read as a
/// 0 %-accurate model). Used by both the one-shot and streaming
/// `evaluate` front-ends.
pub(crate) fn accuracy<T>(
    outcomes: &[T],
    samples: &[(Tensor, usize)],
    class_of: impl Fn(&T) -> usize,
) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    debug_assert_eq!(outcomes.len(), samples.len());
    let correct = outcomes
        .iter()
        .zip(samples)
        .filter(|(o, (_, want))| class_of(o) == *want)
        .count();
    Some(correct as f64 / samples.len() as f64)
}
